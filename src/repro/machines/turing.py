"""Deterministic single-tape Turing machines.

The transition table maps ``(state, symbol) -> (new_state, write, move)``
with moves in ``{'L', 'R', 'S'}``.  Missing transitions halt the machine
rejecting — the common convention that keeps tables short.  Runs are
step-budgeted; exceeding the budget raises
:class:`~repro.errors.MachineTimeoutError` rather than silently deciding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import MachineError, MachineTimeoutError
from repro.machines.tape import BLANK, Tape

#: Conventional accepting/rejecting halt state names.
ACCEPT = "accept"
REJECT = "reject"


class HaltReason(enum.Enum):
    """Why a run stopped."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    NO_TRANSITION = "no-transition"


@dataclass(frozen=True)
class TMResult:
    """Outcome of a completed (halted) run."""

    accepted: bool
    reason: HaltReason
    steps: int
    final_state: str
    tape: str


@dataclass(frozen=True)
class Configuration:
    """A full machine configuration (for step-by-step inspection)."""

    state: str
    tape_window: str
    head: int
    step: int


class TuringMachine:
    """A deterministic Turing machine over single-character alphabets."""

    def __init__(
        self,
        transitions: Mapping[tuple[str, str], tuple[str, str, str]],
        initial: str,
        accept_states: frozenset[str] | set[str] = frozenset({ACCEPT}),
        reject_states: frozenset[str] | set[str] = frozenset({REJECT}),
        name: str = "",
    ) -> None:
        self.transitions = dict(transitions)
        self.initial = initial
        self.accept_states = frozenset(accept_states)
        self.reject_states = frozenset(reject_states)
        self.name = name
        self._validate()

    def _validate(self) -> None:
        overlap = self.accept_states & self.reject_states
        if overlap:
            raise MachineError(f"states {sorted(overlap)} both accept and reject")
        for (state, symbol), (target, write, move) in self.transitions.items():
            if state in self.accept_states or state in self.reject_states:
                raise MachineError(f"halting state {state!r} has outgoing transitions")
            if move not in ("L", "R", "S"):
                raise MachineError(f"bad move {move!r} in transition from {state!r}")
            for sym, role in ((symbol, "read"), (write, "write")):
                if not isinstance(sym, str) or len(sym) != 1:
                    raise MachineError(
                        f"{role} symbol {sym!r} must be a single character"
                    )

    # -- running --------------------------------------------------------------------

    def run(self, word: str, max_steps: int = 100_000) -> TMResult:
        """Run to halting; raise :class:`MachineTimeoutError` past the budget."""
        tape = Tape(word)
        state = self.initial
        steps = 0
        while True:
            if state in self.accept_states:
                return TMResult(True, HaltReason.ACCEPTED, steps, state, tape.content())
            if state in self.reject_states:
                return TMResult(False, HaltReason.REJECTED, steps, state, tape.content())
            if steps >= max_steps:
                raise MachineTimeoutError(max_steps)
            action = self.transitions.get((state, tape.read()))
            if action is None:
                return TMResult(
                    False, HaltReason.NO_TRANSITION, steps, state, tape.content()
                )
            state, write, move = action
            tape.write(write)
            tape.move(move)
            steps += 1

    def accepts(self, word: str, max_steps: int = 100_000) -> bool:
        """Convenience wrapper for :meth:`run`."""
        return self.run(word, max_steps).accepted

    def trace(self, word: str, max_steps: int = 10_000) -> Iterator[Configuration]:
        """Yield each configuration of the run (for debugging/examples)."""
        tape = Tape(word)
        state = self.initial
        for step in range(max_steps + 1):
            lo, hi = tape.extent
            window = "".join(
                dict(tape.cells()).get(i, BLANK) for i in range(lo, hi + 1)
            )
            yield Configuration(state, window, tape.head - lo, step)
            if state in self.accept_states or state in self.reject_states:
                return
            action = self.transitions.get((state, tape.read()))
            if action is None:
                return
            state, write, move = action
            tape.write(write)
            tape.move(move)
        raise MachineTimeoutError(max_steps)

    @property
    def states(self) -> frozenset[str]:
        found = {self.initial} | self.accept_states | self.reject_states
        for (state, _symbol), (target, _write, _move) in self.transitions.items():
            found.add(state)
            found.add(target)
        return frozenset(found)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"TuringMachine({label.strip()} |Q|={len(self.states)}, "
            f"|delta|={len(self.transitions)})"
        )
