"""A library of concrete machines and deciders.

The stock languages of the reproduction, each witnessing a different
rung of the Chomsky ladder (all are *computable*, so all fall under
Theorem 2.1):

==================  ==========================  ========================
language            class                        machine provided
==================  ==========================  ========================
``a^n b^n``         context-free, not regular    Turing + counter machine
``a^n b^n c^n``     context-sensitive, not CF    Turing machine
palindromes         context-free, not regular    Turing machine
``w w``             context-sensitive, not CF    predicate
unary primes        decidable, not CF            predicate
balanced ``a``/``b``  context-free (Dyck-like)   predicate
==================  ==========================  ========================
"""

from __future__ import annotations

from repro.machines.counter import anbn_counter_machine
from repro.machines.decider import (
    Decider,
    cm_decider,
    predicate_decider,
    tm_decider,
)
from repro.machines.turing import ACCEPT, TuringMachine

# -- Turing machines ------------------------------------------------------------------


def tm_anbn() -> TuringMachine:
    """Accepts ``{a^n b^n : n >= 0}`` by the classic marking sweep."""
    transitions = {
        ("q0", "a"): ("q1", "X", "R"),
        ("q0", "Y"): ("q3", "Y", "R"),
        ("q0", "_"): (ACCEPT, "_", "S"),
        ("q1", "a"): ("q1", "a", "R"),
        ("q1", "Y"): ("q1", "Y", "R"),
        ("q1", "b"): ("q2", "Y", "L"),
        ("q2", "a"): ("q2", "a", "L"),
        ("q2", "Y"): ("q2", "Y", "L"),
        ("q2", "X"): ("q0", "X", "R"),
        ("q3", "Y"): ("q3", "Y", "R"),
        ("q3", "_"): (ACCEPT, "_", "S"),
    }
    return TuringMachine(transitions, initial="q0", name="anbn")


def tm_anbncn() -> TuringMachine:
    """Accepts ``{a^n b^n c^n : n >= 0}`` — beyond context-free."""
    transitions = {
        ("q0", "a"): ("q1", "X", "R"),
        ("q0", "Y"): ("q4", "Y", "R"),
        ("q0", "_"): (ACCEPT, "_", "S"),
        ("q1", "a"): ("q1", "a", "R"),
        ("q1", "Y"): ("q1", "Y", "R"),
        ("q1", "b"): ("q2", "Y", "R"),
        ("q2", "b"): ("q2", "b", "R"),
        ("q2", "Z"): ("q2", "Z", "R"),
        ("q2", "c"): ("q3", "Z", "L"),
        ("q3", "a"): ("q3", "a", "L"),
        ("q3", "b"): ("q3", "b", "L"),
        ("q3", "Y"): ("q3", "Y", "L"),
        ("q3", "Z"): ("q3", "Z", "L"),
        ("q3", "X"): ("q0", "X", "R"),
        ("q4", "Y"): ("q4", "Y", "R"),
        ("q4", "Z"): ("q4", "Z", "R"),
        ("q4", "_"): (ACCEPT, "_", "S"),
    }
    return TuringMachine(transitions, initial="q0", name="anbncn")


def tm_palindrome() -> TuringMachine:
    """Accepts palindromes over ``{a, b}`` by cancelling end pairs."""
    transitions = {
        ("q0", "a"): ("scan_a", "_", "R"),
        ("q0", "b"): ("scan_b", "_", "R"),
        ("q0", "_"): (ACCEPT, "_", "S"),
        ("scan_a", "a"): ("scan_a", "a", "R"),
        ("scan_a", "b"): ("scan_a", "b", "R"),
        ("scan_a", "_"): ("check_a", "_", "L"),
        ("scan_b", "a"): ("scan_b", "a", "R"),
        ("scan_b", "b"): ("scan_b", "b", "R"),
        ("scan_b", "_"): ("check_b", "_", "L"),
        ("check_a", "a"): ("back", "_", "L"),
        ("check_a", "_"): (ACCEPT, "_", "S"),
        ("check_b", "b"): ("back", "_", "L"),
        ("check_b", "_"): (ACCEPT, "_", "S"),
        ("back", "a"): ("back", "a", "L"),
        ("back", "b"): ("back", "b", "L"),
        ("back", "_"): ("q0", "_", "R"),
    }
    return TuringMachine(transitions, initial="q0", name="palindrome")


# -- reference predicates -----------------------------------------------------------------


def is_anbn(word: str) -> bool:
    """``a^n b^n`` with ``n >= 0``."""
    n = len(word) // 2
    return len(word) % 2 == 0 and word == "a" * n + "b" * n


def is_anbn_positive(word: str) -> bool:
    """``a^n b^n`` with ``n >= 1`` — exactly Figure 1's language."""
    return bool(word) and is_anbn(word)


def is_anbncn(word: str) -> bool:
    """``a^n b^n c^n`` with ``n >= 0``."""
    n = len(word) // 3
    return len(word) % 3 == 0 and word == "a" * n + "b" * n + "c" * n


def is_palindrome(word: str) -> bool:
    return word == word[::-1]


def is_ww(word: str) -> bool:
    """``{w w : w in {a,b}*}`` — the copy language, not context-free."""
    half = len(word) // 2
    return len(word) % 2 == 0 and word[:half] == word[half:]


def is_unary_prime(word: str) -> bool:
    """``{1^p : p prime}`` in unary — decidable, far from context-free."""
    n = len(word)
    if word != "1" * n or n < 2:
        return False
    return all(n % k for k in range(2, int(n**0.5) + 1))


def is_balanced(word: str) -> bool:
    """Dyck-like balance with ``a`` opening and ``b`` closing."""
    depth = 0
    for symbol in word:
        depth += 1 if symbol == "a" else -1
        if depth < 0:
            return False
    return depth == 0


# -- canonical deciders -----------------------------------------------------------------------


def decider_anbn() -> Decider:
    return tm_decider(tm_anbn(), "ab", name="anbn")


def decider_anbn_counter() -> Decider:
    return cm_decider(anbn_counter_machine(), "ab", name="anbn-counter")


def decider_anbncn() -> Decider:
    return tm_decider(tm_anbncn(), "abc", name="anbncn")


def decider_palindrome() -> Decider:
    return tm_decider(tm_palindrome(), "ab", name="palindrome")


def decider_ww() -> Decider:
    return predicate_decider(is_ww, "ab", name="ww")


def decider_unary_primes() -> Decider:
    return predicate_decider(is_unary_prime, "1", name="unary-primes")


def decider_balanced() -> Decider:
    return predicate_decider(is_balanced, "ab", name="balanced")


def standard_deciders() -> dict[str, Decider]:
    """The benchmark suite's stock of computable languages."""
    return {
        "anbn": decider_anbn(),
        "anbncn": decider_anbncn(),
        "palindrome": decider_palindrome(),
        "ww": decider_ww(),
        "unary-primes": decider_unary_primes(),
        "balanced": decider_balanced(),
    }
