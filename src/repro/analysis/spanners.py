"""Foremost broadcast trees and temporal spanner pruning.

The structural view of one-to-all communication: the union of foremost
journeys from a source forms a *foremost broadcast tree* — each node is
entered by the hop that first informed it.  Pruning a TVG to such a
tree is the temporal analogue of a BFS spanning tree and yields the
minimal contact set a buffered broadcast actually needs, which the
benchmarks compare against the flood's transmission count.

Engine route
------------

:func:`foremost_broadcast_tree` runs its temporal Dijkstra over the one
shared successor kernel of :mod:`repro.core.traversal`: with ``engine=``
a :class:`~repro.core.engine.TemporalEngine`, single-hop moves come from
binary search on the compiled contact arrays instead of per-date
presence scans.  The kernel enumerates moves in the same order either
way, so the tree — entry hops included — is identical (proven by the
differential oracle suite under all three waiting semantics).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.core.journeys import Hop
from repro.core.semantics import WAIT, WaitingSemantics
from repro.core.transforms import graph_like
from repro.core.traversal import _resolve_horizon, _step_fn
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine


@dataclass(frozen=True)
class BroadcastTree:
    """The foremost broadcast structure from one source."""

    source: Hashable
    start_time: int
    #: node -> the hop that first informed it.
    entry_hop: dict[Hashable, Hop]
    #: node -> earliest information time (source at start_time).
    informed_at: dict[Hashable, int]

    @property
    def reached(self) -> frozenset[Hashable]:
        return frozenset(self.informed_at)

    @property
    def completion_time(self) -> int | None:
        """Date the last reached node was informed."""
        others = [t for n, t in self.informed_at.items() if n != self.source]
        return max(others) if others else None

    def depth_of(self, node: Hashable) -> int:
        """Number of hops on the tree path from the source."""
        depth = 0
        cursor = node
        while cursor != self.source:
            hop = self.entry_hop[cursor]
            cursor = hop.edge.source
            depth += 1
            if depth > len(self.informed_at) + 1:
                raise ReproError("cycle in broadcast tree (internal error)")
        return depth

    def edges(self) -> list[Hop]:
        """All tree hops, ordered by arrival date."""
        return sorted(self.entry_hop.values(), key=lambda hop: hop.arrival)


def foremost_broadcast_tree(
    graph: TimeVaryingGraph,
    source: Hashable,
    start_time: int,
    semantics: WaitingSemantics = WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
) -> BroadcastTree:
    """Compute the foremost broadcast tree by temporal Dijkstra.

    Each node's entry hop realizes its earliest possible arrival under
    the chosen semantics; the tree therefore has exactly one hop per
    reached node (minus the source), the temporal analogue of a BFS
    tree.  With ``engine=`` the Dijkstra runs over the compiled
    successor kernel — same algorithm, same tree, compiled lookups.
    """
    horizon = _resolve_horizon(graph, horizon)
    step = _step_fn(graph, semantics, horizon, engine)
    informed: dict[Hashable, int] = {source: start_time}
    entry: dict[Hashable, Hop] = {}
    expanded: set[tuple[Hashable, int]] = set()
    queue: list[tuple[int, int, Hashable]] = [(start_time, 0, source)]
    tie = 0
    while queue:
        ready, _t, node = heapq.heappop(queue)
        if (node, ready) in expanded:
            continue
        expanded.add((node, ready))
        for edge, departure, arrival in step(node, ready):
            target = edge.target
            if target not in informed or arrival < informed[target]:
                informed[target] = arrival
                entry[target] = Hop(edge, departure)
            if (target, arrival) not in expanded:
                tie += 1
                heapq.heappush(queue, (arrival, tie, target))
    return BroadcastTree(
        source=source, start_time=start_time, entry_hop=entry, informed_at=informed
    )


def tree_subgraph(graph: TimeVaryingGraph, tree: BroadcastTree) -> TimeVaryingGraph:
    """The TVG restricted to the broadcast tree's edges (schedules kept).

    A *temporal spanner* for one-to-all from the tree's source: it
    preserves the foremost arrival of every reached node while dropping
    every other contact.
    """
    pruned = graph_like(graph, name=f"{graph.name}~tree({tree.source})")
    pruned.add_nodes(graph.nodes)
    keep = {hop.edge.key for hop in tree.entry_hop.values()}
    for edge in graph.edges:
        if edge.key in keep:
            pruned.add_edge_object(edge)
    return pruned


def spanner_savings(
    graph: TimeVaryingGraph, tree: BroadcastTree
) -> tuple[int, int, float]:
    """(edges kept, edges total, fraction dropped) for the tree spanner."""
    kept = len({hop.edge.key for hop in tree.entry_hop.values()})
    total = graph.edge_count
    dropped = 0.0 if total == 0 else 1.0 - kept / total
    return kept, total, dropped
