"""Small statistics helpers for benchmark reporting.

Benchmarks sweep seeds and report mean +/- spread; these helpers keep
that arithmetic in one tested place instead of scattered across harness
scripts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and extremes of one measured series."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        return self.stdev / math.sqrt(self.count) if self.count else 0.0

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.stderr:.3f} (n={self.count})"


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a non-empty series."""
    data = [float(v) for v in values]
    if not data:
        raise ReproError("cannot summarize an empty series")
    mean = sum(data) / len(data)
    if len(data) > 1:
        variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    else:
        variance = 0.0
    return Summary(
        count=len(data),
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def ratio(numerator: float, denominator: float) -> float:
    """A guarded ratio (0 when the denominator is 0)."""
    return numerator / denominator if denominator else 0.0


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (the benchmarks' output shape)."""
    widths = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [str(cell) for cell in row]
        if len(rendered) != len(headers):
            raise ReproError(
                f"row has {len(rendered)} cells, headers have {len(headers)}"
            )
        widths = [max(w, len(c)) for w, c in zip(widths, rendered)]
        rendered_rows.append(rendered)
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    separator = "  ".join("-" * w for w in widths)
    return "\n".join([line([str(h) for h in headers]), separator] + [line(r) for r in rendered_rows])
