"""Time-series views of a dynamic network.

Curves over the study window — density, snapshot components, and the
*reachability growth curve* ``r(t)`` (the fraction of ordered pairs
already joined by a journey arriving by ``t``).  The growth curve is the
continuous version of the E6 benchmark: buffered floods ride ``r_wait``,
bufferless ones ``r_nowait``, and the area between the two curves is the
integrated value of waiting on that network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.core.semantics import NO_WAIT, WAIT, WaitingSemantics
from repro.core.snapshots import snapshot
from repro.core.traversal import reachable_states
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError


def density_curve(graph: TimeVaryingGraph, start: int, end: int) -> list[tuple[int, float]]:
    """Per-date fraction of edges present."""
    _check(start, end)
    if graph.edge_count == 0:
        return [(t, 0.0) for t in range(start, end)]
    return [
        (t, sum(1 for _ in graph.edges_at(t)) / graph.edge_count)
        for t in range(start, end)
    ]


def component_curve(graph: TimeVaryingGraph, start: int, end: int) -> list[tuple[int, int]]:
    """Per-date number of weakly-connected snapshot components."""
    _check(start, end)
    return [
        (t, nx.number_weakly_connected_components(snapshot(graph, t)))
        for t in range(start, end)
    ]


def reachability_growth(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    semantics: WaitingSemantics = WAIT,
) -> list[tuple[int, float]]:
    """``r(t)``: fraction of ordered pairs joined by a journey arriving
    by date ``t`` (journeys start at ``start``).

    Monotone non-decreasing by construction; ``r(end-1) == 1.0`` iff the
    window is temporally connected under the semantics.
    """
    _check(start, end)
    nodes = list(graph.nodes)
    n = len(nodes)
    if n <= 1:
        return [(t, 1.0) for t in range(start, end)]
    earliest: dict[tuple[Hashable, Hashable], int] = {}
    for source in nodes:
        states = reachable_states(graph, [(source, start)], semantics, horizon=end)
        best: dict[Hashable, int] = {}
        for node, time in states:
            if node == source:
                continue
            if node not in best or time < best[node]:
                best[node] = time
        for node, time in best.items():
            earliest[(source, node)] = time
    total_pairs = n * (n - 1)
    curve = []
    for t in range(start, end):
        joined = sum(1 for time in earliest.values() if time <= t)
        curve.append((t, joined / total_pairs))
    return curve


@dataclass(frozen=True)
class WaitingValue:
    """The integrated gap between the wait and no-wait growth curves."""

    wait_curve: list[tuple[int, float]]
    nowait_curve: list[tuple[int, float]]

    @property
    def area(self) -> float:
        """Sum over dates of ``r_wait(t) - r_nowait(t)`` (>= 0)."""
        return sum(
            w - n for (_t, w), (_t2, n) in zip(self.wait_curve, self.nowait_curve)
        )

    @property
    def final_gap(self) -> float:
        """``r_wait - r_nowait`` at the window end."""
        return self.wait_curve[-1][1] - self.nowait_curve[-1][1]

    @property
    def wait_saturation_time(self) -> int | None:
        """First date at which ``r_wait`` reaches 1.0, or None."""
        for t, value in self.wait_curve:
            if value >= 1.0:
                return t
        return None


def value_of_waiting(
    graph: TimeVaryingGraph, start: int, end: int
) -> WaitingValue:
    """Both growth curves and their integrated gap."""
    return WaitingValue(
        wait_curve=reachability_growth(graph, start, end, WAIT),
        nowait_curve=reachability_growth(graph, start, end, NO_WAIT),
    )


def _check(start: int, end: int) -> None:
    if end <= start:
        raise ReproError(f"empty window [{start}, {end})")
