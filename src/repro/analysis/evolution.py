"""Time-series views of a dynamic network.

Curves over the study window — density, snapshot components, and the
*reachability growth curve* ``r(t)`` (the fraction of ordered pairs
already joined by a journey arriving by ``t``).  The growth curve is the
continuous version of the E6 benchmark: buffered floods ride ``r_wait``,
bufferless ones ``r_nowait``, and the area between the two curves is the
integrated value of waiting on that network.

Engine route
------------

``reachability_growth`` and ``value_of_waiting`` accept an ``engine=``
hook.  With a :class:`~repro.core.engine.TemporalEngine` the whole curve
comes from ONE batched all-pairs arrival sweep
(:meth:`~repro.core.engine.TemporalEngine.arrival_matrix`): the matrix
of earliest arrivals is computed once, its off-diagonal entries sorted,
and each prefix date answered by binary search — instead of ``n``
independent interpretive searches re-run per source.  Results are
identical to the interpretive path (the differential oracle suite in
``tests/properties/test_property_analysis.py`` proves it under all
three waiting semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

import networkx as nx
import numpy as np

from repro.core.semantics import NO_WAIT, WAIT, WaitingSemantics
from repro.core.snapshots import snapshot
from repro.core.time_domain import require_window
from repro.core.traversal import reachable_states
from repro.core.tvg import TimeVaryingGraph

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine
    from repro.service.cluster import ClusterExecutor


def density_curve(graph: TimeVaryingGraph, start: int, end: int) -> list[tuple[int, float]]:
    """Per-date fraction of edges present."""
    require_window(start, end)
    if graph.edge_count == 0:
        return [(t, 0.0) for t in range(start, end)]
    return [
        (t, sum(1 for _ in graph.edges_at(t)) / graph.edge_count)
        for t in range(start, end)
    ]


def component_curve(graph: TimeVaryingGraph, start: int, end: int) -> list[tuple[int, int]]:
    """Per-date number of weakly-connected snapshot components."""
    require_window(start, end)
    return [
        (t, nx.number_weakly_connected_components(snapshot(graph, t)))
        for t in range(start, end)
    ]


def growth_curve_from_arrivals(
    arrival: np.ndarray, start: int, end: int
) -> list[tuple[int, float]]:
    """The growth curve derived from an all-pairs arrival matrix.

    ``arrival`` is the output of
    :meth:`~repro.core.engine.TemporalEngine.arrival_matrix`; sort its
    off-diagonal finite entries once and each prefix date is a binary
    search.  Shared by :func:`reachability_growth` and the query
    service, which reuses one cached matrix across query families.
    """
    from repro.core.engine import UNREACHED

    n = arrival.shape[0]
    if n <= 1:
        return [(t, 1.0) for t in range(start, end)]
    total_pairs = n * (n - 1)
    off_diagonal = arrival[~np.eye(n, dtype=bool)]
    arrivals = np.sort(off_diagonal[off_diagonal != UNREACHED])
    dates = np.arange(start, end, dtype=np.int64)
    joined = np.searchsorted(arrivals, dates, side="right")
    return [(int(t), int(count) / total_pairs) for t, count in zip(dates, joined)]


def reachability_growth(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    semantics: WaitingSemantics = WAIT,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> list[tuple[int, float]]:
    """``r(t)``: fraction of ordered pairs joined by a journey arriving
    by date ``t`` (journeys start at ``start``).

    Monotone non-decreasing by construction; ``r(end-1) == 1.0`` iff the
    window is temporally connected under the semantics.

    With ``engine=`` the curve derives from one batched arrival sweep:
    sort the off-diagonal earliest arrivals once, then each prefix is a
    binary search — O(n^2 log n) total instead of a full reachability
    computation per prefix length.  ``shards`` partitions that sweep
    across worker processes and ``cluster`` ships it to remote sweep
    workers; the interpretive path ignores both.
    """
    require_window(start, end)
    nodes = list(graph.nodes)
    n = len(nodes)
    if n <= 1:
        return [(t, 1.0) for t in range(start, end)]
    total_pairs = n * (n - 1)
    if engine is not None:
        engine.require_graph(graph, "reachability_growth")
        _nodes, arrival = engine.arrival_matrix(
            start, semantics, horizon=end, shards=shards, cluster=cluster,
            kernel=kernel,
        )
        return growth_curve_from_arrivals(arrival, start, end)
    earliest: dict[tuple[Hashable, Hashable], int] = {}
    for source in nodes:
        states = reachable_states(graph, [(source, start)], semantics, horizon=end)
        best: dict[Hashable, int] = {}
        for node, time in states:
            if node == source:
                continue
            if node not in best or time < best[node]:
                best[node] = time
        for node, time in best.items():
            earliest[(source, node)] = time
    curve = []
    for t in range(start, end):
        joined = sum(1 for time in earliest.values() if time <= t)
        curve.append((t, joined / total_pairs))
    return curve


@dataclass(frozen=True)
class WaitingValue:
    """The integrated gap between the wait and no-wait growth curves."""

    wait_curve: list[tuple[int, float]]
    nowait_curve: list[tuple[int, float]]

    @property
    def area(self) -> float:
        """Sum over dates of ``r_wait(t) - r_nowait(t)`` (>= 0)."""
        return sum(
            w - n for (_t, w), (_t2, n) in zip(self.wait_curve, self.nowait_curve)
        )

    @property
    def final_gap(self) -> float:
        """``r_wait - r_nowait`` at the window end."""
        return self.wait_curve[-1][1] - self.nowait_curve[-1][1]

    @property
    def wait_saturation_time(self) -> int | None:
        """First date at which ``r_wait`` reaches 1.0, or None."""
        for t, value in self.wait_curve:
            if value >= 1.0:
                return t
        return None


def value_of_waiting(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> WaitingValue:
    """Both growth curves and their integrated gap.

    With ``engine=`` the two curves cost exactly two batched arrival
    sweeps (one per semantics), each shardable across processes via
    ``shards``, across machines via ``cluster``, and run on the sweep
    kernel named by ``kernel``.
    """
    return WaitingValue(
        wait_curve=reachability_growth(
            graph, start, end, WAIT, engine=engine, shards=shards,
            cluster=cluster, kernel=kernel,
        ),
        nowait_curve=reachability_growth(
            graph, start, end, NO_WAIT, engine=engine, shards=shards,
            cluster=cluster, kernel=kernel,
        ),
    )
