"""Reachability matrices across waiting semantics.

The node-to-node view of the waiting gap: the same TVG, the same time
window, two boolean matrices — who can reach whom with and without
buffering.  The entrywise difference is the operational payoff of
waiting that the E6/E8 benchmarks quantify.

Every function accepts an ``engine=`` hook: with a
:class:`~repro.core.engine.TemporalEngine` the matrix is produced by the
engine's batched multi-source sweep — ONE pass over the temporal state
space instead of ``n`` independent searches (and ``2n`` for the gap
matrix) — with results identical to the interpretive path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.core.semantics import NO_WAIT, WAIT, WaitingSemantics
from repro.core.traversal import reachable_nodes
from repro.core.tvg import TimeVaryingGraph

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine
    from repro.service.cluster import ClusterExecutor


def reachability_matrix(
    graph: TimeVaryingGraph,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> tuple[list[Hashable], np.ndarray]:
    """Boolean matrix ``M[i, j]`` = node ``j`` reachable from node ``i``.

    Diagonal entries are True (the trivial journey).  Returns the node
    ordering alongside so callers can label the axes.  ``shards``
    partitions the engine's sweep across worker processes
    (:mod:`repro.core.parallel`), ``cluster`` ships it to remote sweep
    workers (:mod:`repro.service.cluster`), and ``kernel`` picks the
    sweep kernel (:mod:`repro.core.sweep_kernel`); the interpretive
    path ignores all three.
    """
    if engine is not None:
        engine.require_graph(graph, "reachability_matrix")
        return engine.reachability_matrix(
            start_time, semantics, horizon, shards, cluster, kernel
        )
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    matrix = np.zeros((len(nodes), len(nodes)), dtype=bool)
    for node in nodes:
        row = index[node]
        matrix[row, row] = True
        for reached in reachable_nodes(graph, node, start_time, semantics, horizon):
            matrix[row, index[reached]] = True
    return nodes, matrix


def reachability_ratio(
    graph: TimeVaryingGraph,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> float:
    """Fraction of ordered pairs ``(u, v), u != v`` connected by a journey.

    With an engine the count comes off the bit-packed form
    (:meth:`~repro.core.engine.TemporalEngine.reachability_packed`):
    a popcount over ``ceil(n/8) x n`` bytes, never materializing the
    boolean matrix (``packbits`` zero-pads the tail bits, so the byte
    popcount needs no edge-of-column masking).
    """
    if engine is not None:
        engine.require_graph(graph, "reachability_ratio")
        nodes, packed = engine.reachability_packed(
            start_time, semantics, horizon, shards, cluster, kernel
        )
        n = len(nodes)
        if n <= 1:
            return 1.0
        reachable_pairs = int(np.bitwise_count(packed).sum()) - n  # drop the diagonal
        return reachable_pairs / (n * (n - 1))
    nodes, matrix = reachability_matrix(
        graph, start_time, semantics, horizon, engine, shards, cluster
    )
    n = len(nodes)
    if n <= 1:
        return 1.0
    reachable_pairs = int(matrix.sum()) - n  # drop the diagonal
    return reachable_pairs / (n * (n - 1))


def semantics_gap_matrix(
    graph: TimeVaryingGraph,
    start_time: int,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> tuple[list[Hashable], np.ndarray]:
    """Pairs reachable with waiting but not without.

    ``M[i, j]`` is True exactly where buffering is *necessary* for the
    pair — the paper's gap, node by node.  With an engine this is two
    batched sweeps (one per semantics) instead of ``2n`` searches.
    """
    nodes, with_wait = reachability_matrix(
        graph, start_time, WAIT, horizon, engine, shards, cluster, kernel
    )
    _same, without = reachability_matrix(
        graph, start_time, NO_WAIT, horizon, engine, shards, cluster, kernel
    )
    return nodes, with_wait & ~without
