"""Temporal connectivity classification.

The TVG literature (Casteigts et al., the paper's reference [1])
organizes dynamic networks into classes by what journeys exist.  The
classifier here covers the ones the examples and benchmarks speak about:

* every snapshot connected (the classic, rarely-true assumption);
* temporally connected over the window (``TC``: all ordered pairs joined
  by a journey) — separately under each waiting semantics;
* disconnected at every instant yet temporally connected — the paper's
  motivating regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.reachability import reachability_ratio
from repro.core.semantics import NO_WAIT, WAIT, WaitingSemantics
from repro.core.snapshots import is_connected_at
from repro.core.tvg import TimeVaryingGraph

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine
    from repro.service.cluster import ClusterExecutor


def is_temporally_connected(
    graph: TimeVaryingGraph,
    start_time: int,
    semantics: WaitingSemantics = WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> bool:
    """Whether every ordered pair is joined by a feasible journey.

    The engine route counts pairs straight off the bit-packed
    reachability form (see :func:`~repro.analysis.reachability
    .reachability_ratio`), never expanding the boolean matrix.
    """
    ratio = reachability_ratio(
        graph, start_time, semantics, horizon, engine, shards, cluster, kernel
    )
    return ratio == 1.0


@dataclass(frozen=True)
class ConnectivityReport:
    """Snapshot-level and journey-level connectivity of one window."""

    snapshots_connected: int
    snapshots_total: int
    wait_ratio: float
    nowait_ratio: float

    @property
    def always_snapshot_connected(self) -> bool:
        return self.snapshots_connected == self.snapshots_total

    @property
    def never_snapshot_connected(self) -> bool:
        return self.snapshots_connected == 0

    @property
    def paper_regime(self) -> bool:
        """Disconnected at every instant, temporally connected with
        waiting — the regime the paper's introduction describes."""
        return self.never_snapshot_connected and self.wait_ratio == 1.0

    def label(self) -> str:
        if self.always_snapshot_connected:
            return "always-connected"
        if self.paper_regime:
            return "never-connected-yet-temporally-connected"
        if self.wait_ratio == 1.0:
            return "temporally-connected"
        return "partially-connected"


def classify_connectivity(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> ConnectivityReport:
    """Classify a TVG's behaviour over ``[start, end)``.

    With ``engine=`` the two reachability ratios come from batched
    sweeps (one per semantics) instead of ``2n`` searches, counted off
    the bit-packed reachability form; ``shards``/``cluster``/``kernel``
    thread through to those sweeps.
    """
    connected = sum(1 for t in range(start, end) if is_connected_at(graph, t))
    return ConnectivityReport(
        snapshots_connected=connected,
        snapshots_total=end - start,
        wait_ratio=reachability_ratio(
            graph, start, WAIT, horizon=end, engine=engine,
            shards=shards, cluster=cluster, kernel=kernel,
        ),
        nowait_ratio=reachability_ratio(
            graph, start, NO_WAIT, horizon=end, engine=engine,
            shards=shards, cluster=cluster, kernel=kernel,
        ),
    )
