"""Analysis layer: reachability matrices, temporal connectivity classes,
and the expressivity-gap measurements behind the headline benchmarks."""

from repro.analysis.classes import ClassReport, classify
from repro.analysis.connectivity import (
    ConnectivityReport,
    classify_connectivity,
    is_temporally_connected,
)
from repro.analysis.evolution import (
    WaitingValue,
    reachability_growth,
    value_of_waiting,
)
from repro.analysis.expressivity import (
    ExpressivityReport,
    language_gap,
    nerode_lower_bound,
    regularity_certificate,
)
from repro.analysis.reachability import (
    reachability_matrix,
    reachability_ratio,
    semantics_gap_matrix,
)
from repro.analysis.spanners import (
    BroadcastTree,
    foremost_broadcast_tree,
    tree_subgraph,
)

__all__ = [
    "BroadcastTree",
    "ClassReport",
    "ConnectivityReport",
    "ExpressivityReport",
    "WaitingValue",
    "classify",
    "foremost_broadcast_tree",
    "reachability_growth",
    "tree_subgraph",
    "value_of_waiting",
    "classify_connectivity",
    "is_temporally_connected",
    "language_gap",
    "nerode_lower_bound",
    "reachability_matrix",
    "reachability_ratio",
    "regularity_certificate",
    "semantics_gap_matrix",
]
