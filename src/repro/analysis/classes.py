"""The TVG class hierarchy of Casteigts–Flocchini–Quattrociocchi–Santoro.

The paper's reference [1] ("Time-varying graphs and dynamic networks",
ADHOC-NOW 2011) organizes dynamic networks into classes by recurrence
and connectivity guarantees.  This module implements *bounded-window
checkers* for the classes the library's experiments speak about:

====  ===============================  =============================================
tag   name                             checked property (over the window)
====  ===============================  =============================================
C1    round connectivity               every node reaches every other and back
C2    temporal connectivity (TC)       every ordered pair joined by a journey
C3    recurrent connectivity           TC holds from every start date in the window
C5    recurrent edges                  every footprint edge reappears throughout
C6    bounded-recurrent edges (B)      gaps between appearances bounded by B
C7    periodic edges (P)               the whole schedule repeats with period P
C9    always-connected snapshots       every snapshot is connected
C10   T-interval connectivity          some spanning connected subgraph stable T steps
====  ===============================  =============================================

Infinite-horizon recurrence is undecidable for black-box schedules, so
every checker takes an explicit window and answers for it; periodic
graphs get exact answers by construction.  The classifier reports the
set of classes a graph exhibits on the window — the inclusion structure
(C7 ⊆ C6 ⊆ C5, C9 ⊆ C2, ...) is asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.analysis.reachability import reachability_ratio
from repro.core.intervals import Interval
from repro.core.semantics import WAIT
from repro.core.snapshots import is_connected_at, snapshot
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError


def _require_window(start: int, end: int) -> None:
    if end <= start:
        raise ReproError(f"empty window [{start}, {end})")


def is_temporally_connected_from(
    graph: TimeVaryingGraph, start: int, end: int
) -> bool:
    """C2 on the window: TC from date ``start`` with horizon ``end``."""
    _require_window(start, end)
    return reachability_ratio(graph, start, WAIT, horizon=end) == 1.0


def is_round_connected(graph: TimeVaryingGraph, start: int, end: int) -> bool:
    """C1: every node can reach every other *and hear back* in the window.

    Equivalent to TC of the window followed by TC of what remains after
    the forward journeys arrive; checked conservatively as TC from
    ``start`` and TC from the window midpoint.
    """
    _require_window(start, end)
    midpoint = (start + end) // 2
    return is_temporally_connected_from(
        graph, start, midpoint
    ) and is_temporally_connected_from(graph, midpoint, end)


def is_recurrently_connected(
    graph: TimeVaryingGraph, start: int, end: int, stride: int = 1
) -> bool:
    """C3 on the window: TC holds from every sampled start date."""
    _require_window(start, end)
    return all(
        is_temporally_connected_from(graph, t, end)
        for t in range(start, max(start + 1, end - 1), stride)
    )


def edges_recurrent(graph: TimeVaryingGraph, start: int, end: int) -> bool:
    """C5 on the window: each footprint edge is present in both halves.

    The finite-window proxy for "appears infinitely often": an edge that
    is live early but silent through the whole second half fails.
    """
    _require_window(start, end)
    midpoint = (start + end) // 2
    first, second = Interval(start, midpoint), Interval(midpoint, end)
    for edge in graph.edges:
        early = edge.presence.support(first)
        late = edge.presence.support(second)
        if bool(early) != bool(late):
            return False
    return True


def edges_bounded_recurrent(
    graph: TimeVaryingGraph, start: int, end: int, bound: int
) -> bool:
    """C6 on the window: every gap between appearances is <= ``bound``.

    Edges silent on the whole window are vacuously fine (not part of the
    footprint); edges with any appearance must reappear within the bound
    up to the window edge.
    """
    _require_window(start, end)
    if bound <= 0:
        raise ReproError(f"recurrence bound must be positive, got {bound}")
    window = Interval(start, end)
    for edge in graph.edges:
        dates = sorted(edge.presence.support(window).times())
        if not dates:
            continue
        if dates[0] - start > bound:
            return False
        for before, after in zip(dates, dates[1:]):
            if after - before > bound:
                return False
        if (end - 1) - dates[-1] > bound:
            return False
    return True


def edges_periodic(graph: TimeVaryingGraph, period: int, start: int, end: int) -> bool:
    """C7 on the window: the schedule repeats with the given period."""
    _require_window(start, end)
    if period <= 0:
        raise ReproError(f"period must be positive, got {period}")
    for edge in graph.edges:
        for t in range(start, end - period):
            if edge.present_at(t) != edge.present_at(t + period):
                return False
    return True


def snapshots_always_connected(
    graph: TimeVaryingGraph, start: int, end: int
) -> bool:
    """C9: every snapshot in the window is (weakly) connected."""
    _require_window(start, end)
    return all(is_connected_at(graph, t) for t in range(start, end))


def interval_connectivity(graph: TimeVaryingGraph, start: int, end: int) -> int:
    """The largest T such that the graph is T-interval connected (C10).

    T-interval connectivity (Kuhn–Lynch–Oshman): in every window of T
    consecutive dates some *stable* connected spanning subgraph exists.
    Returns 0 when even single snapshots disconnect somewhere.
    """
    _require_window(start, end)
    if not snapshots_always_connected(graph, start, end):
        return 0
    best = 1
    for t_len in range(2, end - start + 1):
        if all(
            _stable_connected(graph, t0, t0 + t_len)
            for t0 in range(start, end - t_len + 1)
        ):
            best = t_len
        else:
            break
    return best


def _stable_connected(graph: TimeVaryingGraph, start: int, end: int) -> bool:
    """Whether the intersection of the snapshots over [start, end) is
    connected (undirected view)."""
    stable = nx.Graph()
    stable.add_nodes_from(graph.nodes)
    first = snapshot(graph, start)
    for u, v in first.edges():
        if all(snapshot(graph, t).has_edge(u, v) for t in range(start + 1, end)):
            stable.add_edge(u, v)
    if stable.number_of_nodes() <= 1:
        return True
    return nx.is_connected(stable)


@dataclass(frozen=True)
class ClassReport:
    """Which classes a TVG exhibits on a window."""

    window: tuple[int, int]
    classes: frozenset[str]
    interval_connectivity: int

    def __contains__(self, tag: str) -> bool:
        return tag in self.classes

    def __str__(self) -> str:
        members = ", ".join(sorted(self.classes)) or "(none)"
        return (
            f"classes on [{self.window[0]}, {self.window[1]}): {members}; "
            f"T-interval connectivity = {self.interval_connectivity}"
        )


def classify(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    recurrence_bound: int | None = None,
    period: int | None = None,
) -> ClassReport:
    """Run all checkers and report the classes exhibited on the window.

    ``recurrence_bound`` and ``period`` default to window/4 and the
    graph's declared period respectively.
    """
    _require_window(start, end)
    bound = recurrence_bound if recurrence_bound is not None else max(1, (end - start) // 4)
    declared = period if period is not None else graph.period
    tags: set[str] = set()
    if is_round_connected(graph, start, end):
        tags.add("C1")
    if is_temporally_connected_from(graph, start, end):
        tags.add("C2")
    if is_recurrently_connected(graph, start, end, stride=max(1, (end - start) // 8)):
        tags.add("C3")
    if edges_recurrent(graph, start, end):
        tags.add("C5")
    if edges_bounded_recurrent(graph, start, end, bound):
        tags.add("C6")
    if declared is not None and edges_periodic(graph, declared, start, end):
        tags.add("C7")
    if snapshots_always_connected(graph, start, end):
        tags.add("C9")
    t_interval = interval_connectivity(graph, start, end)
    if t_interval >= 1:
        tags.add("C10")
    return ClassReport(
        window=(start, end),
        classes=frozenset(tags),
        interval_connectivity=t_interval,
    )
