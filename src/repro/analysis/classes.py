"""The TVG class hierarchy of Casteigts–Flocchini–Quattrociocchi–Santoro.

The paper's reference [1] ("Time-varying graphs and dynamic networks",
ADHOC-NOW 2011) organizes dynamic networks into classes by recurrence
and connectivity guarantees.  This module implements *bounded-window
checkers* for the classes the library's experiments speak about:

====  ===============================  =============================================
tag   name                             checked property (over the window)
====  ===============================  =============================================
C1    round connectivity               every node reaches every other and back
C2    temporal connectivity (TC)       every ordered pair joined by a journey
C3    recurrent connectivity           TC holds from every start date in the window
C5    recurrent edges                  every footprint edge reappears throughout
C6    bounded-recurrent edges (B)      gaps between appearances bounded by B
C7    periodic edges (P)               the whole schedule repeats with period P
C9    always-connected snapshots       every snapshot is connected
C10   T-interval connectivity          some spanning connected subgraph stable T steps
====  ===============================  =============================================

Infinite-horizon recurrence is undecidable for black-box schedules, so
every checker takes an explicit window and answers for it; periodic
graphs get exact answers by construction.  The classifier reports the
set of classes a graph exhibits on the window — the inclusion structure
(C7 ⊆ C6 ⊆ C5, C9 ⊆ C2, ...) is asserted by the tests.

Every checker and :func:`classify` accept an ``engine=`` hook.  With a
:class:`~repro.core.engine.TemporalEngine`, each connectivity check
(C1/C2/C3) is one batched arrival sweep instead of ``n`` interpretive
searches, and the schedule checkers (C5–C10) read per-edge contact
dates off the compiled index — black-box presences memoized by the
:class:`~repro.core.index.LazyContactCache`, so repeated
classifications never re-call a predicate on a date it already
answered.  Verdicts are identical either way (proven by the
differential oracle suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from repro.analysis.reachability import reachability_ratio
from repro.core.intervals import Interval
from repro.core.semantics import WAIT
from repro.core.snapshots import is_connected_at, snapshot
from repro.core.time_domain import require_window
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine
    from repro.service.cluster import ClusterExecutor


def is_temporally_connected_from(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> bool:
    """C2 on the window: TC from date ``start`` with horizon ``end``."""
    require_window(start, end)
    return (
        reachability_ratio(
            graph, start, WAIT, horizon=end, engine=engine, shards=shards,
            cluster=cluster, kernel=kernel,
        )
        == 1.0
    )


def is_round_connected(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> bool:
    """C1: every node can reach every other *and hear back* in the window.

    Equivalent to TC of the window followed by TC of what remains after
    the forward journeys arrive; checked conservatively as TC from
    ``start`` and TC from the window midpoint.  A width-1 window leaves
    no room for a reply (latencies are positive, so forward journeys
    arrive after its only departure date): only the trivial single-node
    graph is round connected there.
    """
    require_window(start, end)
    midpoint = (start + end) // 2
    if midpoint == start:
        return graph.node_count <= 1
    return is_temporally_connected_from(
        graph, start, midpoint, engine=engine, shards=shards, cluster=cluster,
        kernel=kernel,
    ) and is_temporally_connected_from(
        graph, midpoint, end, engine=engine, shards=shards, cluster=cluster,
        kernel=kernel,
    )


def is_recurrently_connected(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    stride: int = 1,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> bool:
    """C3 on the window: TC holds from every sampled start date."""
    require_window(start, end)
    return all(
        is_temporally_connected_from(
            graph, t, end, engine=engine, shards=shards, cluster=cluster,
            kernel=kernel,
        )
        for t in range(start, max(start + 1, end - 1), stride)
    )


def _window_contacts(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None",
) -> list[tuple[object, list[int]]]:
    """Each edge paired with its sorted contact dates on ``[start, end)``.

    With an engine the dates come off the compiled index — black-box
    edges answered by the memoizing
    :class:`~repro.core.index.LazyContactCache` — otherwise from the
    interpretive presence support.
    """
    if engine is not None:
        engine.require_graph(graph, "a class checker")
        index = engine.index_for(start, end)
        return [
            (edge, index.departures(ei, start, end))
            for ei, edge in enumerate(index.edge_list)
        ]
    window = Interval(start, end)
    return [
        (edge, sorted(edge.presence.support(window).times()))
        for edge in graph.edges
    ]


def edges_recurrent(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
) -> bool:
    """C5 on the window: each footprint edge is present in both halves.

    The finite-window proxy for "appears infinitely often": an edge that
    is live early but silent through the whole second half fails.
    """
    require_window(start, end)
    midpoint = (start + end) // 2
    for _edge, dates in _window_contacts(graph, start, end, engine):
        early = bool(dates) and dates[0] < midpoint
        late = bool(dates) and dates[-1] >= midpoint
        if early != late:
            return False
    return True


def edges_bounded_recurrent(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    bound: int,
    engine: "TemporalEngine | None" = None,
) -> bool:
    """C6 on the window: every gap between appearances is <= ``bound``.

    Edges silent on the whole window are vacuously fine (not part of the
    footprint); edges with any appearance must reappear within the bound
    up to the window edge.
    """
    require_window(start, end)
    if bound <= 0:
        raise ReproError(f"recurrence bound must be positive, got {bound}")
    for _edge, dates in _window_contacts(graph, start, end, engine):
        if not dates:
            continue
        if dates[0] - start > bound:
            return False
        for before, after in zip(dates, dates[1:]):
            if after - before > bound:
                return False
        if (end - 1) - dates[-1] > bound:
            return False
    return True


def edges_periodic(
    graph: TimeVaryingGraph,
    period: int,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
) -> bool:
    """C7 on the window: the schedule repeats with the given period.

    Checked as: the contact dates of ``[start, end - period)`` shifted
    by the period are exactly the contact dates of
    ``[start + period, end)``.
    """
    require_window(start, end)
    if period <= 0:
        raise ReproError(f"period must be positive, got {period}")
    for _edge, dates in _window_contacts(graph, start, end, engine):
        shifted = [t + period for t in dates if t < end - period]
        late = [t for t in dates if t >= start + period]
        if shifted != late:
            return False
    return True


def _pairs_by_date(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine",
) -> dict[int, set[tuple]]:
    """date -> the ``(source, target)`` pairs present, off the index."""
    present: dict[int, set[tuple]] = {t: set() for t in range(start, end)}
    for edge, dates in _window_contacts(graph, start, end, engine):
        for t in dates:
            present[t].add((edge.source, edge.target))
    return present


def _pairs_connected(graph: TimeVaryingGraph, pairs: set[tuple]) -> bool:
    """Whether the undirected view of the pair set spans the graph."""
    if graph.node_count <= 1:
        return True
    static = nx.Graph()
    static.add_nodes_from(graph.nodes)
    static.add_edges_from(pairs)
    return nx.is_connected(static)


def snapshots_always_connected(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
) -> bool:
    """C9: every snapshot in the window is (weakly) connected."""
    require_window(start, end)
    if engine is None:
        return all(is_connected_at(graph, t) for t in range(start, end))
    present = _pairs_by_date(graph, start, end, engine)
    return all(_pairs_connected(graph, present[t]) for t in range(start, end))


def interval_connectivity(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    engine: "TemporalEngine | None" = None,
) -> int:
    """The largest T such that the graph is T-interval connected (C10).

    T-interval connectivity (Kuhn–Lynch–Oshman): in every window of T
    consecutive dates some *stable* connected spanning subgraph exists.
    Returns 0 when even single snapshots disconnect somewhere.
    """
    require_window(start, end)
    if engine is None:
        if not snapshots_always_connected(graph, start, end):
            return 0
        stable = _stable_connected
    else:
        present = _pairs_by_date(graph, start, end, engine)
        if not all(_pairs_connected(graph, present[t]) for t in range(start, end)):
            return 0

        def stable(graph: TimeVaryingGraph, t0: int, t1: int) -> bool:
            pairs = set.intersection(*(present[t] for t in range(t0, t1)))
            return _pairs_connected(graph, pairs)

    best = 1
    for t_len in range(2, end - start + 1):
        if all(
            stable(graph, t0, t0 + t_len)
            for t0 in range(start, end - t_len + 1)
        ):
            best = t_len
        else:
            break
    return best


def _stable_connected(graph: TimeVaryingGraph, start: int, end: int) -> bool:
    """Whether the intersection of the snapshots over [start, end) is
    connected (undirected view)."""
    stable = nx.Graph()
    stable.add_nodes_from(graph.nodes)
    first = snapshot(graph, start)
    for u, v in first.edges():
        if all(snapshot(graph, t).has_edge(u, v) for t in range(start + 1, end)):
            stable.add_edge(u, v)
    if stable.number_of_nodes() <= 1:
        return True
    return nx.is_connected(stable)


@dataclass(frozen=True)
class ClassReport:
    """Which classes a TVG exhibits on a window."""

    window: tuple[int, int]
    classes: frozenset[str]
    interval_connectivity: int

    def __contains__(self, tag: str) -> bool:
        return tag in self.classes

    def __str__(self) -> str:
        members = ", ".join(sorted(self.classes)) or "(none)"
        return (
            f"classes on [{self.window[0]}, {self.window[1]}): {members}; "
            f"T-interval connectivity = {self.interval_connectivity}"
        )


def classify(
    graph: TimeVaryingGraph,
    start: int,
    end: int,
    recurrence_bound: int | None = None,
    period: int | None = None,
    engine: "TemporalEngine | None" = None,
    shards: int | None = None,
    cluster: "ClusterExecutor | None" = None,
    kernel: str | None = None,
) -> ClassReport:
    """Run all checkers and report the classes exhibited on the window.

    ``recurrence_bound`` and ``period`` default to window/4 and the
    graph's declared period respectively.  ``engine`` accelerates the
    connectivity checkers (C1/C2/C3) through the batched arrival sweep
    — shardable across worker processes via ``shards`` or across
    machines via ``cluster`` — and the schedule checkers through the
    compiled contact arrays.
    """
    require_window(start, end)
    bound = recurrence_bound if recurrence_bound is not None else max(1, (end - start) // 4)
    declared = period if period is not None else graph.period
    tags: set[str] = set()
    if is_round_connected(
        graph, start, end, engine=engine, shards=shards, cluster=cluster,
        kernel=kernel,
    ):
        tags.add("C1")
    if is_temporally_connected_from(
        graph, start, end, engine=engine, shards=shards, cluster=cluster,
        kernel=kernel,
    ):
        tags.add("C2")
    if is_recurrently_connected(
        graph, start, end, stride=max(1, (end - start) // 8),
        engine=engine, shards=shards, cluster=cluster, kernel=kernel,
    ):
        tags.add("C3")
    if edges_recurrent(graph, start, end, engine=engine):
        tags.add("C5")
    if edges_bounded_recurrent(graph, start, end, bound, engine=engine):
        tags.add("C6")
    if declared is not None and edges_periodic(
        graph, declared, start, end, engine=engine
    ):
        tags.add("C7")
    t_interval = interval_connectivity(graph, start, end, engine=engine)
    if t_interval >= 1:
        # interval_connectivity is positive exactly when every snapshot
        # is connected, so C9 needs no second pass over the window.
        tags.add("C9")
        tags.add("C10")
    return ClassReport(
        window=(start, end),
        classes=frozenset(tags),
        interval_connectivity=t_interval,
    )
