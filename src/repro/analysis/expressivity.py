"""Expressivity measurements — the paper's headline gap, as data.

Two complementary instruments:

* :func:`regularity_certificate` — for periodic/finite TVGs, an *exact*
  certificate: the extracted language automaton, minimized, with its
  state count.  Existence of the certificate is Theorem 2.2 made
  checkable.

* :func:`nerode_lower_bound` — for any language sample, the number of
  pairwise-separated prefix classes it exhibits.  By Myhill–Nerode this
  lower-bounds the state count of *any* DFA for the language; a bound
  that keeps growing as the sample deepens is the finite shadow of
  non-regularity.  The no-wait languages of Theorem 2.1 graphs show
  exactly that growth, while every wait language plateaus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.dfa import DFA
from repro.automata.language_compute import language_automaton
from repro.automata.operations import minimize
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.semantics import NO_WAIT, WAIT, WaitingSemantics


def nerode_lower_bound(sample: frozenset[str] | set[str], max_length: int) -> int:
    """A Myhill–Nerode lower bound from a finite language sample.

    Prefixes ``u, u'`` are separated when some extension ``v`` (with
    ``|uv|, |u'v| <= max_length``) has ``uv`` in the sample but ``u'v``
    not (or vice versa) — counting only extensions both prefixes can
    afford keeps the test sound on truncated samples.  The number of
    pairwise-separated prefixes lower-bounds every DFA for any language
    agreeing with the sample up to ``max_length``.
    """
    prefixes: set[str] = set()
    for word in sample:
        for cut in range(len(word) + 1):
            prefixes.add(word[:cut])
    ordered = sorted(prefixes, key=lambda w: (len(w), w))

    suffixes: dict[str, set[str]] = {p: set() for p in ordered}
    for word in sample:
        for cut in range(len(word) + 1):
            suffixes[word[:cut]].add(word[cut:])

    classes: list[str] = []
    for prefix in ordered:
        distinct = True
        for representative in classes:
            budget = max_length - max(len(prefix), len(representative))
            if budget < 0:
                continue
            left = {s for s in suffixes[prefix] if len(s) <= budget}
            right = {s for s in suffixes[representative] if len(s) <= budget}
            if left == right:
                distinct = False
                break
        if distinct:
            classes.append(prefix)
    return len(classes)


@dataclass(frozen=True)
class RegularityCertificate:
    """An exact regularity witness for a TVG language."""

    semantics: str
    minimal_dfa: DFA

    @property
    def state_count(self) -> int:
        return len(self.minimal_dfa.states)


def regularity_certificate(
    automaton: TVGAutomaton,
    semantics: WaitingSemantics = WAIT,
) -> RegularityCertificate:
    """Extract, determinize, and minimize the language of a periodic or
    finite-lifetime TVG — a constructive regularity proof for it."""
    nfa = language_automaton(automaton, semantics)
    return RegularityCertificate(
        semantics=str(semantics), minimal_dfa=minimize(nfa.to_dfa())
    )


@dataclass(frozen=True)
class ExpressivityReport:
    """The wait/no-wait gap of one TVG, one sample depth."""

    max_length: int
    nowait_sample: frozenset[str]
    wait_sample: frozenset[str]
    nowait_nerode: int
    wait_nerode: int

    @property
    def wait_only_words(self) -> frozenset[str]:
        """Words the environment must buffer to realize."""
        return self.wait_sample - self.nowait_sample

    @property
    def gap_ratio(self) -> float:
        """|wait-only words| / |wait words| (0 when waiting adds nothing)."""
        if not self.wait_sample:
            return 0.0
        return len(self.wait_only_words) / len(self.wait_sample)


def language_gap(
    automaton: TVGAutomaton,
    max_length: int,
    horizon: int,
) -> ExpressivityReport:
    """Sample both languages of one TVG-automaton and report the gap.

    ``L_nowait subseteq L_wait`` always (direct journeys are feasible
    under waiting), so the gap is one-sided; the report carries the
    Nerode bounds of both samples for the regular-vs-beyond contrast.
    """
    nowait = automaton.language(max_length, NO_WAIT, horizon)
    wait = automaton.language(max_length, WAIT, horizon)
    return ExpressivityReport(
        max_length=max_length,
        nowait_sample=nowait,
        wait_sample=wait,
        nowait_nerode=nerode_lower_bound(nowait, max_length),
        wait_nerode=nerode_lower_bound(wait, max_length),
    )
