"""ASCII rendering of TVG schedules and journeys.

Plain-text timelines for terminals, docstrings, and bug reports: one row
per edge, one column per date, ``#`` where the edge is present; journeys
are overlaid as departure markers.  Rendering is pure string building —
no terminal control codes — so the output is stable for golden tests.
"""

from __future__ import annotations

from repro.core.intervals import Interval
from repro.core.journeys import Journey
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError


def render_schedule(
    graph: TimeVaryingGraph,
    start: int | None = None,
    end: int | None = None,
    mark: str = "#",
    gap: str = ".",
) -> str:
    """A presence timeline, one row per edge.

    >>> from repro.core.builders import TVGBuilder
    >>> g = (TVGBuilder().lifetime(0, 6)
    ...      .edge("a", "b", present={0, 1, 4}, key="ab")
    ...      .edge("b", "c", present={2}, key="bc").build())
    >>> print(render_schedule(g))
    t         012345
    ab  a->b  ##..#.
    bc  b->c  ..#...
    """
    start, end = _window(graph, start, end)
    if not graph.edges:
        raise ReproError("nothing to render: the graph has no edges")
    key_width = max(len(e.key) for e in graph.edges)
    arrow_width = max(len(_arrow(e)) for e in graph.edges)
    header = f"{'t'.ljust(key_width)}  {''.ljust(arrow_width)}" + "".join(
        str(t % 10) for t in range(start, end)
    )
    lines = [header.rstrip()]
    window = Interval(start, end)
    for edge in graph.edges:
        support = edge.presence.support(window)
        cells = "".join(
            mark if t in support else gap for t in range(start, end)
        )
        lines.append(
            f"{edge.key.ljust(key_width)}  {_arrow(edge).ljust(arrow_width)}{cells}"
        )
    return "\n".join(lines)


def render_journey(journey: Journey, graph: TimeVaryingGraph | None = None) -> str:
    """A one-line itinerary: nodes, departure dates, and pauses.

    >>> # doctest-free example:  a @0 --ab--> b (wait 3) @4 --bc--> c @5
    """
    parts = [f"{journey.source!r}@{journey.departure}"]
    previous_arrival = None
    for hop in journey:
        if previous_arrival is not None:
            pause = hop.start - previous_arrival
            if pause:
                parts.append(f"(wait {pause})")
        parts.append(f"--{hop.edge.key or hop.edge.label or '?'}-->")
        parts.append(f"{hop.edge.target!r}@{hop.arrival}")
        previous_arrival = hop.arrival
    return " ".join(parts)


def render_journey_over_schedule(
    journey: Journey,
    graph: TimeVaryingGraph,
    start: int | None = None,
    end: int | None = None,
) -> str:
    """The schedule timeline with the journey's departures marked ``@``."""
    start, end = _window(graph, start, end)
    base = render_schedule(graph, start, end).splitlines()
    key_width = max(len(e.key) for e in graph.edges)
    arrow_width = max(len(_arrow(e)) for e in graph.edges)
    offset = key_width + 2 + arrow_width
    departures = {(hop.edge.key, hop.start) for hop in journey}
    rows = [base[0]]
    for line, edge in zip(base[1:], graph.edges):
        cells = list(line)
        for time in range(start, end):
            if (edge.key, time) in departures:
                cells[offset + (time - start)] = "@"
        rows.append("".join(cells))
    return "\n".join(rows)


def _arrow(edge) -> str:
    label = "" if edge.label is None else f":{edge.label}"
    return f"{edge.source}->{edge.target}{label}  "


def _window(
    graph: TimeVaryingGraph, start: int | None, end: int | None
) -> tuple[int, int]:
    if start is None:
        start = graph.lifetime.start
    if end is None:
        if graph.period is not None:
            end = start + 2 * graph.period
        elif graph.lifetime.bounded:
            end = int(graph.lifetime.end)
        else:
            raise ReproError(
                "an explicit end is required to render an unbounded graph"
            )
    if end <= start:
        raise ReproError(f"empty window [{start}, {end})")
    return start, end
