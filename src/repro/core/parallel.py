"""The process-sharded all-pairs arrival sweep.

The batched bitmask sweep of
:meth:`~repro.core.engine.TemporalEngine.arrival_matrix` is
embarrassingly partitionable by *source blocks*: the arrival dates a
sweep records for source ``i`` never depend on which other sources share
the pass (masks are bookkeeping, not state), so splitting the source set
into blocks and sweeping each block independently yields sub-matrices
that stack into the exact serial matrix — element for element.

Sharding it across processes takes one extra step: a worker cannot hold
the graph.  Presences and latencies are arbitrary Python callables
(black-box :class:`~repro.core.presence.FunctionPresence`, lambda
latencies) that may not pickle — and even when they do, re-evaluating a
black-box predicate in ``k`` workers would break the engine's
at-most-once-per-(edge, date) contract.  So the parent first *lowers the
whole sweep to plain data*: a :class:`SweepPlan` of per-edge contact
dates (black-box edges resolved through the engine's long-lived
:class:`~repro.core.index.LazyContactCache`, so each predicate still
fires at most once per (edge, date)) with the matching arrival dates
precomputed (swallowing callable latencies), plus the CSR adjacency.
The plan is tuples of ints — picklable, compact, and exactly what the
block sweep :func:`sweep_block` needs.

Workers then run the identical sweep over their block, with masks as
wide as the *block* instead of the whole node set — on big graphs the
serial sweep's masks are multi-word bignums, so blocks also shrink every
mask merge to a few machine words.  ``benchmarks/bench_parallel.py``
gates the resulting speedup; ``tests/properties/test_property_parallel``
proves bit-for-bit equality with the serial sweep under all three
waiting semantics, black-box edges included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.core.semantics import WaitingSemantics
from repro.core.sweep_kernel import UNREACHED, resolve_kernel, sweep_block

__all__ = [
    "MIN_PARALLEL_NODES",
    "SweepPlan",
    "build_sweep_plan",
    "partition_sources",
    "sweep_block",
    "effective_shards",
    "sharded_arrival_matrix",
    "UNREACHED",
]

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine

#: Below this many nodes the per-process overhead (fork + pickling the
#: plan + stacking) dwarfs the sweep itself, so ``shards`` requests fall
#: back to the serial sweep.
MIN_PARALLEL_NODES: int = 8

#: Lowered plans kept per engine (FIFO eviction); plans are O(edges x
#: horizon) tuples, so a small handful bounds memory while still
#: covering the query mix between two mutations.
PLAN_MEMO_SIZE: int = 8


@dataclass(frozen=True)
class SweepPlan:
    """One sweep lowered to plain data (only ints and tuples — picklable).

    ``contacts[e]`` holds edge ``e``'s sorted departure dates within
    ``[start_time, horizon)`` and ``arrivals[e]`` the aligned arrival
    dates (``dep + zeta(e, dep)`` precomputed, so callable latencies
    never cross a process boundary).  ``out_edges[j]`` lists the
    out-edge indices of node ``j`` in insertion order and
    ``target_idx[e]`` the head node of edge ``e`` — the same CSR view
    the compiled index uses.  ``max_wait`` is the waiting bound (None
    for unbounded, 0 for no-wait).
    """

    n: int
    out_edges: tuple[tuple[int, ...], ...]
    target_idx: tuple[int, ...]
    contacts: tuple[tuple[int, ...], ...]
    arrivals: tuple[tuple[int, ...], ...]
    start_time: int
    horizon: int
    max_wait: int | None


def build_sweep_plan(
    engine: "TemporalEngine",
    start_time: int,
    semantics: WaitingSemantics,
    horizon: int,
) -> tuple[list[Hashable], SweepPlan]:
    """Lower one sweep over ``engine``'s graph into a :class:`SweepPlan`.

    Runs entirely in the parent: black-box presences are resolved here,
    through the engine's :class:`~repro.core.index.LazyContactCache`, so
    arbitrary predicates never need to pickle and each still fires at
    most once per (edge, date) across the engine's lifetime.  Returns
    the node ordering alongside (the matrix axes).

    Plans are memoized on the engine by ``(version, start, horizon,
    max_wait)`` — a plan is immutable plain data and the lowering loop
    is O(edges x horizon), so repeated sweeps of the same query (the
    incremental path re-sweeping a cone right after the full sweep that
    seeded it, sharded blocks, retries) share one lowering.
    """
    key = (engine.graph.version, start_time, horizon, semantics.max_wait)
    memo = engine._plan_memo
    hit = memo.get(key)
    if hit is not None:
        nodes, plan = hit
        return list(nodes), plan
    index = engine.index_for(min(start_time, horizon), horizon)
    contacts: list[tuple[int, ...]] = []
    arrivals: list[tuple[int, ...]] = []
    for ei in range(len(index.edge_list)):
        departures = index.departures(ei, start_time, horizon)
        contacts.append(tuple(departures))
        arrivals.append(tuple(index.arrival(ei, dep) for dep in departures))
    plan = SweepPlan(
        n=len(index.nodes),
        out_edges=tuple(
            tuple(index.out_edge_indices(j)) for j in range(len(index.nodes))
        ),
        target_idx=tuple(index.target_idx),
        contacts=tuple(contacts),
        arrivals=tuple(arrivals),
        start_time=start_time,
        horizon=horizon,
        max_wait=semantics.max_wait,
    )
    if len(memo) >= PLAN_MEMO_SIZE:
        memo.pop(next(iter(memo)))
    memo[key] = (tuple(index.nodes), plan)
    return list(index.nodes), plan


def partition_sources(
    n: int, shards: int, oversplit: int = 1
) -> list[tuple[int, ...]]:
    """Split sources ``0..n-1`` into at most ``shards * oversplit``
    contiguous, balanced, non-empty blocks (sizes differ by at most
    one).

    ``oversplit > 1`` produces more blocks than workers on purpose: the
    cluster executor feeds them through a shared queue, so a finished
    worker picks up blocks a straggler would otherwise still own — work
    stealing by construction, with no rebalancing protocol.
    """
    shards = max(1, min(shards * max(1, oversplit), n))
    base, extra = divmod(n, shards)
    blocks: list[tuple[int, ...]] = []
    lo = 0
    for b in range(shards):
        size = base + (1 if b < extra else 0)
        if size:
            blocks.append(tuple(range(lo, lo + size)))
        lo += size
    return blocks


def effective_shards(n: int, shards: int | None) -> int:
    """The worker count a request actually gets: 1 (serial) for absent
    or unit requests, empty source sets, and tiny graphs, else
    ``min(shards, n)``."""
    if n <= 0 or shards is None or shards <= 1 or n < MIN_PARALLEL_NODES:
        return 1
    return min(shards, n)


#: The worker's copy of the plan (and the kernel to run it on),
#: installed once per process by the pool initializer — blocks are then
#: the only per-task payload, so the plan (the big object: O(|E| x
#: window) ints) is never re-pickled per shard.
_WORKER_PLAN: SweepPlan | None = None
_WORKER_KERNEL: str | None = None


def _install_worker_plan(plan: SweepPlan, kernel: str | None = None) -> None:
    global _WORKER_PLAN, _WORKER_KERNEL
    _WORKER_PLAN = plan
    _WORKER_KERNEL = kernel


def _sweep_task(sources: tuple[int, ...]) -> np.ndarray:
    """Module-level worker entry point (picklable by reference)."""
    return sweep_block(_WORKER_PLAN, sources, kernel=_WORKER_KERNEL)


def _pool_context():
    import multiprocessing

    # Fork keeps worker start cheap and inherits the warm interpreter;
    # platforms without it (or with it disabled) use their default.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-fork platforms
        return multiprocessing.get_context()


def sharded_arrival_matrix(
    engine: "TemporalEngine",
    start_time: int,
    semantics: WaitingSemantics,
    horizon: int,
    shards: int,
    kernel: str | None = None,
) -> tuple[list[Hashable], np.ndarray]:
    """All-pairs earliest arrivals via ``shards`` worker processes.

    Lowers the sweep to a :class:`SweepPlan` in the parent, ships it to
    a process pool (one task per source block), and stacks the per-block
    sub-matrices into the full ``(n, n)`` matrix — element for element
    equal to :meth:`TemporalEngine.arrival_matrix` run serially.  Falls
    back to in-process block sweeps if the platform refuses to spawn
    workers, so the answer is never lost to sandboxing.  The kernel is
    resolved in the parent (argument > environment > default) so every
    worker runs the same one whatever its inherited environment says.
    """
    kernel = resolve_kernel(kernel)
    nodes, plan = build_sweep_plan(engine, start_time, semantics, horizon)
    if plan.n == 0:
        # An empty source set has nothing to shard: answer the (0, n)
        # matrix directly instead of spinning up a pool over no blocks.
        return nodes, np.full((0, plan.n), UNREACHED, dtype=np.int64)
    blocks = partition_sources(plan.n, shards)
    if len(blocks) == 1:
        return nodes, sweep_block(plan, blocks[0], kernel=kernel)
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        with ProcessPoolExecutor(
            max_workers=len(blocks),
            mp_context=_pool_context(),
            initializer=_install_worker_plan,
            initargs=(plan, kernel),
        ) as pool:
            parts = list(pool.map(_sweep_task, blocks))
    except (OSError, BrokenProcessPool):  # pragma: no cover — hosts that
        # forbid subprocesses outright or kill workers mid-flight
        parts = [sweep_block(plan, block, kernel=kernel) for block in blocks]
    return nodes, np.vstack(parts)
