"""Fluent construction of time-varying graphs.

:class:`TVGBuilder` wraps the raw :class:`TimeVaryingGraph` API with a
chainable interface and shorthand schedule notations, so examples and
tests can state graphs compactly::

    g = (
        TVGBuilder(name="triangle")
        .lifetime(0, 20)
        .edge("a", "b", present=[(0, 5), (10, 15)])
        .edge("b", "c", present={2, 7, 12}, latency=2)
        .contact("a", "c", period=(0, 4))           # on at t % 4 == 0
        .build()
    )
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.core.latency import (
    LatencyFunction,
    constant_latency,
    function_latency,
)
from repro.core.presence import (
    PresenceFunction,
    always,
    at_times,
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.time_domain import INFINITY, Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError

PresenceSpec = (
    PresenceFunction | Iterable[tuple[int, int]] | set | frozenset | None
)
LatencySpec = LatencyFunction | int | None


def coerce_presence(spec, period: tuple[int, int] | None = None) -> PresenceFunction:
    """Interpret a shorthand presence specification.

    * ``None`` -> always present;
    * a :class:`PresenceFunction` -> itself;
    * a ``set``/``frozenset`` of ints -> present at exactly those dates;
    * an iterable of ``(start, end)`` pairs -> present on those intervals;
    * a callable -> a :func:`function_presence`.

    ``period=(r, p)`` overrides everything with "present at t % p == r".
    """
    if period is not None:
        residue, length = period
        return periodic_presence([residue], length)
    if spec is None:
        return always()
    if isinstance(spec, PresenceFunction):
        return spec
    if isinstance(spec, (set, frozenset)):
        return at_times(sorted(spec))
    if callable(spec):
        return function_presence(spec)
    return interval_presence(spec)


def coerce_latency(spec: LatencySpec) -> LatencyFunction:
    """Interpret a shorthand latency specification.

    ``None`` -> unit latency; an int -> that constant; a
    :class:`LatencyFunction` -> itself; a callable -> wrapped.
    """
    if spec is None:
        return constant_latency(1)
    if isinstance(spec, LatencyFunction):
        return spec
    if isinstance(spec, int):
        return constant_latency(spec)
    if callable(spec):
        return function_latency(spec)
    raise ReproError(f"cannot interpret latency spec {spec!r}")


class TVGBuilder:
    """Chainable builder for :class:`TimeVaryingGraph`."""

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._lifetime = Lifetime()
        self._period: int | None = None
        self._pending_nodes: list[Hashable] = []
        self._pending_edges: list[dict] = []
        self._pending_contacts: list[dict] = []

    def lifetime(self, start: int, end: float = INFINITY) -> "TVGBuilder":
        """Set the study span ``[start, end)``."""
        self._lifetime = Lifetime(start, end)
        return self

    def periodic(self, period: int) -> "TVGBuilder":
        """Declare the graph periodic (enables wait-language extraction)."""
        self._period = period
        return self

    def node(self, *nodes: Hashable) -> "TVGBuilder":
        """Add isolated nodes (endpoints of edges are added implicitly)."""
        self._pending_nodes.extend(nodes)
        return self

    def edge(
        self,
        source: Hashable,
        target: Hashable,
        label: str | None = None,
        present: PresenceSpec = None,
        latency: LatencySpec = None,
        period: tuple[int, int] | None = None,
        key: str | None = None,
    ) -> "TVGBuilder":
        """Queue a directed edge; see :func:`coerce_presence` for the
        shorthand ``present`` forms."""
        self._pending_edges.append(
            dict(
                source=source,
                target=target,
                label=label,
                presence=coerce_presence(present, period),
                latency=coerce_latency(latency),
                key=key,
            )
        )
        return self

    def contact(
        self,
        u: Hashable,
        v: Hashable,
        present: PresenceSpec = None,
        latency: LatencySpec = None,
        period: tuple[int, int] | None = None,
        label: str | None = None,
        key: str | None = None,
    ) -> "TVGBuilder":
        """Queue an undirected contact (a symmetric pair of edges)."""
        self._pending_contacts.append(
            dict(
                u=u,
                v=v,
                label=label,
                presence=coerce_presence(present, period),
                latency=coerce_latency(latency),
                key=key,
            )
        )
        return self

    def build(self) -> TimeVaryingGraph:
        """Materialize the graph."""
        graph = TimeVaryingGraph(
            lifetime=self._lifetime, period=self._period, name=self._name
        )
        graph.add_nodes(self._pending_nodes)
        for spec in self._pending_edges:
            graph.add_edge(**spec)
        for spec in self._pending_contacts:
            graph.add_contact(
                spec["u"],
                spec["v"],
                presence=spec["presence"],
                latency=spec["latency"],
                label=spec["label"],
                key=spec["key"],
            )
        return graph


def from_contact_table(
    contacts: Mapping[tuple[Hashable, Hashable], Iterable[tuple[int, int]]],
    lifetime: Lifetime | None = None,
    latency: LatencySpec = None,
    name: str = "",
) -> TimeVaryingGraph:
    """Build an undirected contact TVG from a ``(u, v) -> intervals`` table.

    This is the natural shape of DTN contact traces: for each node pair,
    the time windows during which they can exchange messages.
    """
    graph = TimeVaryingGraph(lifetime=lifetime or Lifetime(), name=name)
    lat = coerce_latency(latency)
    for (u, v), windows in contacts.items():
        graph.add_contact(u, v, presence=interval_presence(windows), latency=lat)
    return graph


def static_graph(
    edges: Iterable[tuple[Hashable, Hashable]],
    latency: LatencySpec = None,
    name: str = "static",
) -> TimeVaryingGraph:
    """A TVG whose edges are always present (an ordinary digraph).

    Static graphs are the degenerate case where waiting adds nothing;
    they anchor several sanity tests.
    """
    graph = TimeVaryingGraph(name=name, period=1)
    lat = coerce_latency(latency)
    for u, v in edges:
        graph.add_edge(u, v, presence=always(), latency=lat)
    return graph
