"""Integer interval sets.

Presence functions over discrete time are most usefully described as
unions of half-open intervals ``[a, b)``.  :class:`IntervalSet` keeps such
a union normalized (sorted, disjoint, non-adjacent) and supports the
queries journey search needs — membership and *next presence at or after
t* — in logarithmic time, plus the boolean algebra used by generators and
transforms.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import TimeDomainError


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[start, end)``; empty if start >= end.

    >>> Interval(2, 5).length
    3
    """

    start: int
    end: int

    @property
    def empty(self) -> bool:
        return self.start >= self.end

    @property
    def length(self) -> int:
        return max(0, self.end - self.start)

    def __contains__(self, time: object) -> bool:
        return isinstance(time, int) and self.start <= time < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one integer."""
        return self.start < other.end and other.start < self.end

    def touches(self, other: "Interval") -> bool:
        """Whether the two intervals overlap or are adjacent."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def shift(self, delta: int) -> "Interval":
        return Interval(self.start + delta, self.end + delta)

    def dilate(self, factor: int) -> "Interval":
        """Scale both endpoints by ``factor`` (time dilation, Theorem 2.3)."""
        if factor <= 0:
            raise TimeDomainError(f"dilation factor must be positive, got {factor}")
        return Interval(self.start * factor, self.end * factor)

    def times(self) -> range:
        return range(self.start, self.end)


class IntervalSet:
    """A normalized union of half-open integer intervals.

    The constructor accepts intervals in any order, overlapping or
    adjacent; they are merged into the canonical minimal representation.

    >>> s = IntervalSet([Interval(0, 3), Interval(3, 5), Interval(8, 9)])
    >>> list(s)
    [Interval(start=0, end=5), Interval(start=8, end=9)]
    >>> 4 in s, 5 in s
    (True, False)
    >>> s.next_time_in(5)
    8
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        merged: list[Interval] = []
        for interval in sorted(iv for iv in intervals if not iv.empty):
            if merged and interval.start <= merged[-1].end:
                last = merged[-1]
                merged[-1] = Interval(last.start, max(last.end, interval.end))
            else:
                merged.append(interval)
        self._starts: Sequence[int] = [iv.start for iv in merged]
        self._ends: Sequence[int] = [iv.end for iv in merged]

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "IntervalSet":
        """Build from ``(start, end)`` tuples."""
        return cls(Interval(a, b) for a, b in pairs)

    @classmethod
    def from_times(cls, times: Iterable[int]) -> "IntervalSet":
        """Build from individual integer dates."""
        return cls(Interval(t, t + 1) for t in times)

    @classmethod
    def empty_set(cls) -> "IntervalSet":
        return cls()

    # -- basic queries ---------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        for start, end in zip(self._starts, self._ends):
            yield Interval(start, end)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return list(self._starts) == list(other._starts) and list(self._ends) == list(
            other._ends
        )

    def __hash__(self) -> int:
        return hash((tuple(self._starts), tuple(self._ends)))

    def __repr__(self) -> str:
        body = ", ".join(f"[{a},{b})" for a, b in zip(self._starts, self._ends))
        return f"IntervalSet({body})"

    def __contains__(self, time: object) -> bool:
        if not isinstance(time, int):
            return False
        index = bisect_right(self._starts, time) - 1
        return index >= 0 and time < self._ends[index]

    @property
    def span(self) -> Interval | None:
        """Smallest single interval covering the whole set, or None if empty."""
        if not self._starts:
            return None
        return Interval(self._starts[0], self._ends[-1])

    def total_length(self) -> int:
        """Number of integer dates contained in the set."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def times(self) -> Iterator[int]:
        """Iterate all contained dates in increasing order."""
        for start, end in zip(self._starts, self._ends):
            yield from range(start, end)

    def next_time_in(self, time: int) -> int | None:
        """Earliest date ``>= time`` inside the set, or None.

        This is the primitive behind the *wait* semantics: a message
        buffered at a node asks each incident edge for its next
        availability.
        """
        index = bisect_right(self._starts, time) - 1
        if index >= 0 and time < self._ends[index]:
            return time
        if index + 1 < len(self._starts):
            return self._starts[index + 1]
        return None

    # -- boolean algebra -------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(list(self) + list(other))

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        result: list[Interval] = []
        i = j = 0
        mine, theirs = list(self), list(other)
        while i < len(mine) and j < len(theirs):
            cut = mine[i].intersect(theirs[j])
            if not cut.empty:
                result.append(cut)
            if mine[i].end <= theirs[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def complement(self, within: Interval) -> "IntervalSet":
        """Dates of ``within`` not in this set."""
        gaps: list[Interval] = []
        cursor = within.start
        for interval in self:
            if interval.end <= within.start:
                continue
            if interval.start >= within.end:
                break
            if interval.start > cursor:
                gaps.append(Interval(cursor, min(interval.start, within.end)))
            cursor = max(cursor, interval.end)
        if cursor < within.end:
            gaps.append(Interval(cursor, within.end))
        return IntervalSet(gaps)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        span = self.span
        if span is None:
            return IntervalSet()
        return self.intersect(other.complement(span))

    # -- transforms --------------------------------------------------------------

    def shift(self, delta: int) -> "IntervalSet":
        return IntervalSet(iv.shift(delta) for iv in self)

    def dilate(self, factor: int) -> "IntervalSet":
        """Scale all dates by ``factor``.

        Note dilation of an interval set is *not* the set of dilated
        member dates: ``[a, b)`` maps to ``[a*factor, b*factor)``, which
        contains dates that are not multiples of ``factor``.  The paper's
        Theorem 2.3 construction instead needs the sparse variant,
        :meth:`dilate_sparse`.
        """
        return IntervalSet(iv.dilate(factor) for iv in self)

    def dilate_sparse(self, factor: int) -> "IntervalSet":
        """Map each contained date ``t`` to the single date ``t*factor``.

        This is the Theorem 2.3 time-expansion: the schedule keeps the
        same events but spaced ``factor`` apart, so a waiting budget below
        ``factor`` creates no new transition choices.
        """
        if factor <= 0:
            raise TimeDomainError(f"dilation factor must be positive, got {factor}")
        return IntervalSet.from_times(t * factor for t in self.times())
