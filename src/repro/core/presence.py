"""Presence functions ``rho : T -> {0, 1}``.

A presence function says whether an edge is available at a given date.
The paper allows *arbitrary computable* presence functions — Table 1 uses
schedules like "present iff ``t = p^i q^(i-1)``" — so the representation
must admit black-box callables while still giving journey search the two
queries it needs:

* :meth:`PresenceFunction.next_present` — earliest available date at or
  after ``t`` (the *wait* primitive), and
* :meth:`PresenceFunction.support` — all available dates in a window
  (the time-expansion primitive of wait-language extraction).

Structured presences (intervals, periodic patterns) answer both exactly;
black-box callables answer by bounded scanning and refuse unbounded
questions instead of looping forever.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.intervals import Interval, IntervalSet
from repro.errors import TimeDomainError


class PresenceFunction:
    """Base class for presence functions.

    Subclasses implement :meth:`__call__`; the scanning fallbacks for
    :meth:`next_present` and :meth:`support` work for any subclass, and
    structured subclasses override them with exact, scan-free versions.
    """

    def __call__(self, time: int) -> bool:
        raise NotImplementedError

    def next_present(self, time: int, limit: int | None = None) -> int | None:
        """Earliest date ``t' >= time`` with ``rho(t') = 1``.

        ``limit`` is an exclusive search bound.  The black-box fallback
        must scan, so it raises :class:`TimeDomainError` when no limit is
        given rather than risk an infinite loop.
        """
        if limit is None:
            raise TimeDomainError(
                f"{type(self).__name__} needs an explicit search limit for "
                "next_present; only structured presences can answer unbounded "
                "queries"
            )
        for candidate in range(time, limit):
            if self(candidate):
                return candidate
        return None

    def support(self, within: Interval) -> IntervalSet:
        """All dates of ``within`` at which the presence is 1."""
        return IntervalSet.from_times(t for t in within.times() if self(t))

    # -- combinators ----------------------------------------------------------

    def shifted(self, delta: int) -> "PresenceFunction":
        """Presence translated in time: new(t) = old(t - delta)."""
        return _ShiftedPresence(self, delta)

    def dilated(self, factor: int) -> "PresenceFunction":
        """Sparse time dilation (Theorem 2.3).

        The new function is present at ``t`` iff ``t`` is a multiple of
        ``factor`` and the original is present at ``t // factor``.  Events
        keep their order but are spaced ``factor`` apart, so waiting less
        than ``factor`` units opens no transition that a direct journey
        would not already have.
        """
        if factor <= 0:
            raise TimeDomainError(f"dilation factor must be positive, got {factor}")
        return _DilatedPresence(self, factor)

    def union(self, other: "PresenceFunction") -> "PresenceFunction":
        """Present whenever either operand is."""
        return _CombinedPresence(self, other, any, "|")

    def intersect(self, other: "PresenceFunction") -> "PresenceFunction":
        """Present only when both operands are."""
        return _CombinedPresence(self, other, all, "&")

    def __or__(self, other: "PresenceFunction") -> "PresenceFunction":
        return self.union(other)

    def __and__(self, other: "PresenceFunction") -> "PresenceFunction":
        return self.intersect(other)


class _AlwaysPresence(PresenceFunction):
    """Present at every date (a static edge)."""

    def __call__(self, time: int) -> bool:
        return True

    def next_present(self, time: int, limit: int | None = None) -> int | None:
        if limit is not None and time >= limit:
            return None
        return time

    def support(self, within: Interval) -> IntervalSet:
        return IntervalSet([within])

    def __repr__(self) -> str:
        return "always()"


class _NeverPresence(PresenceFunction):
    """Never present (a deleted edge)."""

    def __call__(self, time: int) -> bool:
        return False

    def next_present(self, time: int, limit: int | None = None) -> int | None:
        return None

    def support(self, within: Interval) -> IntervalSet:
        return IntervalSet()

    def __repr__(self) -> str:
        return "never()"


class IntervalPresence(PresenceFunction):
    """Presence given by an explicit :class:`IntervalSet`."""

    def __init__(self, intervals: IntervalSet) -> None:
        self.intervals = intervals

    def __call__(self, time: int) -> bool:
        return time in self.intervals

    def next_present(self, time: int, limit: int | None = None) -> int | None:
        found = self.intervals.next_time_in(time)
        if found is None or (limit is not None and found >= limit):
            return None
        return found

    def support(self, within: Interval) -> IntervalSet:
        return self.intervals.intersect(IntervalSet([within]))

    def __repr__(self) -> str:
        return f"IntervalPresence({self.intervals!r})"


class PeriodicPresence(PresenceFunction):
    """Presence repeating with a fixed period.

    ``pattern`` lists the residues (mod ``period``) at which the edge is
    present; e.g. ``PeriodicPresence({0, 1}, 5)`` is present at
    0, 1, 5, 6, 10, 11, ...  Periodic presences make a TVG eligible for
    exact wait-language extraction.
    """

    def __init__(self, pattern: Iterable[int], period: int) -> None:
        if period <= 0:
            raise TimeDomainError(f"period must be positive, got {period}")
        self.period = period
        self.pattern = frozenset(r % period for r in pattern)
        self._sorted = sorted(self.pattern)

    def __call__(self, time: int) -> bool:
        return time % self.period in self.pattern

    def next_present(self, time: int, limit: int | None = None) -> int | None:
        if not self._sorted:
            return None
        base = time - (time % self.period)
        residue = time % self.period
        for r in self._sorted:
            if r >= residue:
                found = base + r
                break
        else:
            found = base + self.period + self._sorted[0]
        if limit is not None and found >= limit:
            return None
        return found

    def support(self, within: Interval) -> IntervalSet:
        if not self._sorted:
            return IntervalSet()
        first_period = within.start // self.period
        last_period = (within.end - 1) // self.period if within.end > within.start else first_period
        times = []
        for k in range(first_period, last_period + 1):
            for r in self._sorted:
                t = k * self.period + r
                if t in within:
                    times.append(t)
        return IntervalSet.from_times(times)

    def __repr__(self) -> str:
        return f"PeriodicPresence({set(self._sorted)!r}, period={self.period})"


class FunctionPresence(PresenceFunction):
    """Presence given by an arbitrary predicate ``T -> bool``.

    This is the fully general case the paper's constructions need
    (Table 1's prime-power schedules, the Gödel clocks of Theorem 2.1).
    Unbounded queries are refused; callers must bound their scans.
    """

    def __init__(self, predicate: Callable[[int], bool], label: str | None = None) -> None:
        self.predicate = predicate
        self.label = label or getattr(predicate, "__name__", "predicate")

    def __call__(self, time: int) -> bool:
        return bool(self.predicate(time))

    def __repr__(self) -> str:
        return f"FunctionPresence({self.label})"


class _ShiftedPresence(PresenceFunction):
    def __init__(self, inner: PresenceFunction, delta: int) -> None:
        self.inner = inner
        self.delta = delta

    def __call__(self, time: int) -> bool:
        return self.inner(time - self.delta)

    def next_present(self, time: int, limit: int | None = None) -> int | None:
        inner_limit = None if limit is None else limit - self.delta
        found = self.inner.next_present(time - self.delta, inner_limit)
        return None if found is None else found + self.delta

    def support(self, within: Interval) -> IntervalSet:
        return self.inner.support(within.shift(-self.delta)).shift(self.delta)

    def __repr__(self) -> str:
        return f"{self.inner!r}.shifted({self.delta})"


class _DilatedPresence(PresenceFunction):
    def __init__(self, inner: PresenceFunction, factor: int) -> None:
        self.inner = inner
        self.factor = factor

    def __call__(self, time: int) -> bool:
        if time % self.factor != 0:
            return False
        return self.inner(time // self.factor)

    def next_present(self, time: int, limit: int | None = None) -> int | None:
        # First multiple of factor at or after `time`.
        inner_start = -(-time // self.factor)
        inner_limit = None if limit is None else -(-limit // self.factor)
        found = self.inner.next_present(inner_start, inner_limit)
        if found is None:
            return None
        result = found * self.factor
        if limit is not None and result >= limit:
            return None
        return result

    def support(self, within: Interval) -> IntervalSet:
        inner_start = -(-within.start // self.factor)
        inner_end = -(-within.end // self.factor)
        inner = self.inner.support(Interval(inner_start, inner_end))
        return IntervalSet.from_times(
            t * self.factor for t in inner.times() if t * self.factor in within
        )

    def __repr__(self) -> str:
        return f"{self.inner!r}.dilated({self.factor})"


class _CombinedPresence(PresenceFunction):
    def __init__(
        self,
        left: PresenceFunction,
        right: PresenceFunction,
        reducer: Callable[[tuple[bool, bool]], bool],
        symbol: str,
    ) -> None:
        self.left = left
        self.right = right
        self.reducer = reducer
        self.symbol = symbol

    def __call__(self, time: int) -> bool:
        return self.reducer((self.left(time), self.right(time)))

    def support(self, within: Interval) -> IntervalSet:
        left = self.left.support(within)
        right = self.right.support(within)
        if self.symbol == "|":
            return left.union(right)
        return left.intersect(right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


# -- public constructors ------------------------------------------------------

_ALWAYS = _AlwaysPresence()
_NEVER = _NeverPresence()


def always() -> PresenceFunction:
    """The constant-true presence (a static edge)."""
    return _ALWAYS


def never() -> PresenceFunction:
    """The constant-false presence."""
    return _NEVER


def interval_presence(pairs: Iterable[tuple[int, int]]) -> PresenceFunction:
    """Presence on the union of half-open ``(start, end)`` intervals."""
    return IntervalPresence(IntervalSet.from_pairs(pairs))


def at_times(times: Iterable[int]) -> PresenceFunction:
    """Presence at exactly the given dates."""
    return IntervalPresence(IntervalSet.from_times(times))


def periodic_presence(pattern: Iterable[int], period: int) -> PresenceFunction:
    """Presence at the given residues modulo ``period``."""
    return PeriodicPresence(pattern, period)


def function_presence(
    predicate: Callable[[int], bool], label: str | None = None
) -> PresenceFunction:
    """Presence defined by an arbitrary predicate on dates."""
    return FunctionPresence(predicate, label)


def pattern_presence(pattern: str, periodic: bool = True) -> PresenceFunction:
    """Presence drawn as a timeline string: ``'#'`` on, ``'.'`` off.

    The inverse of :func:`repro.core.render.render_schedule`'s cells.
    With ``periodic=True`` (default) the pattern repeats forever with
    period ``len(pattern)``; otherwise it describes dates 0..len-1 only.

    >>> p = pattern_presence("#..#")
    >>> [t for t in range(8) if p(t)]
    [0, 3, 4, 7]
    """
    if not pattern or set(pattern) - {"#", "."}:
        raise TimeDomainError(
            f"pattern must be a non-empty string of '#' and '.', got {pattern!r}"
        )
    on_dates = [i for i, cell in enumerate(pattern) if cell == "#"]
    if periodic:
        return PeriodicPresence(on_dates, len(pattern))
    return IntervalPresence(IntervalSet.from_times(on_dates))
