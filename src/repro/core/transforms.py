"""Structural and temporal transforms of TVGs.

The load-bearing transform is :func:`dilate` — the time expansion at the
heart of Theorem 2.3: spacing all schedule events a factor ``d`` apart so
that a waiting budget below ``d`` opens no journey that a direct journey
could not already take.  The others (shift, relabel, subgraph, union,
reverse) are the standard algebra used by generators and tests.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.core.time_domain import INFINITY, Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError, TimeDomainError


def dilate(graph: TimeVaryingGraph, factor: int) -> TimeVaryingGraph:
    """Sparse time dilation by ``factor`` (Theorem 2.3's expansion).

    Every presence date ``t`` becomes ``t * factor`` and latencies scale
    by ``factor``, so each direct journey of the original maps to a direct
    journey of the dilated graph and *vice versa*; between consecutive
    events there are now ``factor - 1`` empty dates, which is what defeats
    bounded waiting below ``factor``.
    """
    if factor <= 0:
        raise TimeDomainError(f"dilation factor must be positive, got {factor}")
    lifetime = graph.lifetime
    end = INFINITY if not lifetime.bounded else int(lifetime.end) * factor
    dilated = TimeVaryingGraph(
        lifetime=Lifetime(lifetime.start * factor, end),
        period=None if graph.period is None else graph.period * factor,
        name=f"{graph.name}*{factor}" if graph.name else f"dilated*{factor}",
    )
    dilated.add_nodes(graph.nodes)
    for edge in graph.edges:
        dilated.add_edge_object(edge.dilated(factor))
    return dilated


def shift(graph: TimeVaryingGraph, delta: int) -> TimeVaryingGraph:
    """Translate the whole schedule by ``delta`` time units."""
    lifetime = graph.lifetime
    end = INFINITY if not lifetime.bounded else int(lifetime.end) + delta
    shifted = TimeVaryingGraph(
        lifetime=Lifetime(lifetime.start + delta, end),
        period=graph.period,
        name=f"{graph.name}+{delta}" if graph.name else f"shifted+{delta}",
    )
    shifted.add_nodes(graph.nodes)
    for edge in graph.edges:
        shifted.add_edge_object(edge.shifted(delta))
    return shifted


def relabel(
    graph: TimeVaryingGraph,
    mapping: dict[str, str] | Callable[[str], str],
) -> TimeVaryingGraph:
    """Rename edge labels through a dict or callable (schedules unchanged).

    A dict must cover every label in use; a callable is applied to each.
    This implements alphabetic morphisms on the expressed language.
    """
    if callable(mapping):
        rename = mapping
    else:
        missing = graph.alphabet - set(mapping)
        if missing:
            raise ReproError(f"relabel mapping misses labels {sorted(missing)}")
        rename = mapping.__getitem__
    result = graph_like(graph, name=f"{graph.name}~relabel")
    for edge in graph.edges:
        new_label = None if edge.label is None else rename(edge.label)
        result.add_edge_object(edge.relabeled(new_label))
    return result


def subgraph(graph: TimeVaryingGraph, nodes: Iterable[Hashable]) -> TimeVaryingGraph:
    """The induced sub-TVG on the given nodes (schedules unchanged)."""
    keep = set(nodes)
    unknown = keep - set(graph.nodes)
    if unknown:
        raise ReproError(f"unknown nodes {sorted(map(repr, unknown))}")
    result = graph_like(graph, name=f"{graph.name}~sub")
    result.add_nodes(n for n in graph.nodes if n in keep)
    for edge in graph.edges:
        if edge.source in keep and edge.target in keep:
            result.add_edge_object(edge)
    return result


def reverse(graph: TimeVaryingGraph) -> TimeVaryingGraph:
    """Every edge reversed, schedules unchanged.

    Note this does *not* reverse the expressed language — journeys are
    directed in time — but it is the right tool for "who can have heard
    from me" reachability queries.
    """
    result = graph_like(graph, name=f"{graph.name}~rev")
    result.add_nodes(graph.nodes)
    for edge in graph.edges:
        result.add_edge_object(edge.reversed(key=edge.key))
    return result


def disjoint_union(
    first: TimeVaryingGraph,
    second: TimeVaryingGraph,
    rename: tuple[str, str] = ("0:", "1:"),
) -> TimeVaryingGraph:
    """Side-by-side union with node names prefixed to avoid collisions.

    Lifetime is the envelope of the two; a common period survives only if
    both declare the same one.
    """
    start = min(first.lifetime.start, second.lifetime.start)
    if first.lifetime.bounded and second.lifetime.bounded:
        end: float = max(int(first.lifetime.end), int(second.lifetime.end))
    else:
        end = INFINITY
    period = first.period if first.period == second.period else None
    result = TimeVaryingGraph(
        lifetime=Lifetime(start, end),
        period=period,
        name=f"{first.name}|{second.name}",
    )
    for prefix, graph in zip(rename, (first, second)):
        tag = lambda n: f"{prefix}{n}"  # noqa: E731 - tiny local closure
        result.add_nodes(tag(n) for n in graph.nodes)
        for edge in graph.edges:
            result.add_edge(
                tag(edge.source),
                tag(edge.target),
                label=edge.label,
                presence=edge.presence,
                latency=edge.latency,
                key=f"{prefix}{edge.key}",
            )
    return result


def graph_like(graph: TimeVaryingGraph, name: str = "") -> TimeVaryingGraph:
    """An empty TVG with the same lifetime/period as ``graph``."""
    return TimeVaryingGraph(
        lifetime=graph.lifetime, period=graph.period, name=name or graph.name
    )
