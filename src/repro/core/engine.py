"""The temporal engine: compiled journey search over one shared kernel.

:class:`TemporalEngine` owns a :class:`~repro.core.index.CompiledTVG`
and exposes the one primitive every consumer needs — the *successor
kernel* :meth:`successors`, "all feasible single-hop moves out of the
temporal state ``(node, ready)``" — answered by binary search and array
slicing on the compiled contact sequences instead of per-date presence
calls.  On top of the kernel it offers:

* drop-in accelerated :meth:`reachable_states` /
  :meth:`earliest_arrivals` / :meth:`foremost_journey` (these delegate
  to :mod:`repro.core.traversal` with ``engine=self``, so compiled and
  interpretive runs execute the *same algorithm* and differ only in how
  successors are produced);
* a **batched all-pairs arrival sweep** (:meth:`arrival_matrix`) that
  records, for every (source, target) pair, the first date a journey
  arrives — in ONE pass over the temporal state space.  Each state
  carries a bitmask of the sources that reach it; masks merge as states
  are processed in increasing time order, and the first pop that brings
  a source's bit to a node *is* that pair's earliest arrival.  The
  matrix serves every consumer that reduces to earliest arrivals:
  :func:`repro.analysis.reachability.reachability_matrix` (arrival is
  finite), :func:`repro.analysis.evolution.reachability_growth`
  (cumulative count of arrivals <= t, O(log) per prefix instead of a
  full matrix per prefix), and the connectivity predicates of
  :mod:`repro.analysis.classes`;
* a fast per-round presence lookup (:meth:`out_edges_at`) for the
  :class:`~repro.dynamics.network.Simulator`.

The engine transparently recompiles its index when the graph mutates
(version counter) or a query needs a wider time window (grow-only).
Edges whose presence cannot be lowered (black-box
:class:`~repro.core.presence.FunctionPresence`) fall back to the
interpretive scan inside the kernel — memoized through one long-lived
:class:`~repro.core.index.LazyContactCache` that survives index
rebuilds, so each black-box predicate is invoked at most once per
(edge, date) across repeated queries.  Results are always identical to
the legacy path — the interpretive implementation remains the
ground-truth oracle, checked by the equivalence property suites.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

import numpy as np

from repro.core.edges import Edge
from repro.core.index import CompiledTVG, LazyContactCache
from repro.core.intervals import Interval
from repro.core.semantics import NO_WAIT, WaitingSemantics
from repro.core.tvg import TimeVaryingGraph
from repro.errors import TimeDomainError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.tvg import MutationDelta
    from repro.service.cluster import ClusterExecutor

# The sentinel now lives with the kernels; re-exported here, its
# historical home, so ``from repro.core.engine import UNREACHED`` keeps
# working everywhere.
from repro.core.sweep_kernel import UNREACHED  # noqa: E402  (re-export)


class TemporalEngine:
    """Compiled query engine over one :class:`TimeVaryingGraph`.

    ``window`` optionally pre-declares the time span to compile; by
    default the graph's bounded lifetime is used and the window grows
    on demand when a query reaches past it.
    """

    def __init__(
        self, graph: TimeVaryingGraph, window: Interval | tuple[int, int] | None = None
    ) -> None:
        self.graph = graph
        if window is not None and not isinstance(window, Interval):
            window = Interval(*window)
        self._requested_window = window
        self._index: CompiledTVG | None = None
        # One cache for the engine's whole lifetime: it survives index
        # rebuilds (window growth, staleness), so black-box predicates
        # are never re-scanned for dates already seen.
        self._contact_cache = LazyContactCache(graph)
        # Lowered SweepPlans, keyed by (version, start, horizon,
        # max_wait) — plans are immutable plain data, so any sweep of
        # the same query at the same version can share one lowering.
        # Owned here, filled by build_sweep_plan.
        self._plan_memo: dict[tuple, tuple[tuple, "object"]] = {}

    # -- index lifecycle -------------------------------------------------------

    def index_for(self, start: int, end: int) -> CompiledTVG:
        """The compiled index, rebuilt if stale or too narrow.

        The compiled window seeds from the declared window (or the
        graph's bounded lifetime) and only ever grows to cover later
        queries, so alternating queries cannot make the engine recompile
        back and forth.  Unbounded-lifetime graphs (e.g. periodic ones)
        need no declaration: every query arrives with explicit bounds
        and the window tracks the widest seen.

        Growth is *geometric*: a query past the window extends the new
        bound, in whichever direction it grew, to at least double the
        old span — so a rolling sequence of per-date lookups (the
        simulator's ``out_edges_at`` fast path on an unbounded-lifetime
        graph), ascending or descending, triggers O(log rounds)
        recompiles instead of one per round.  Staleness rebuilds keep
        the window as-is — mutations must not inflate it.
        """
        index = self._index
        if index is not None and index.covers(start, end):
            if not index.stale:
                return index
            # Stale but wide enough: a complete chain of presence-only
            # deltas patches the compiled arrays in place — no relower
            # of the untouched edges, no CSR rebuild.
            if index.apply_deltas(self.graph.deltas_since(index.version)):
                return index
        lo, hi = start, end
        if index is not None:
            old_lo, old_hi = index.window.start, index.window.end
            span = old_hi - old_lo
            lo, hi = min(lo, old_lo), max(hi, old_hi)
            if hi > old_hi:
                hi = max(hi, lo + 2 * span)
            if lo < old_lo:
                lo = min(lo, hi - 2 * span)
        elif self._requested_window is not None:
            window = self._requested_window
            lo, hi = min(lo, window.start), max(hi, window.end)
        elif self.graph.lifetime.bounded:
            lifetime = self.graph.lifetime
            lo, hi = min(lo, lifetime.start), max(hi, int(lifetime.end))
        self._index = CompiledTVG(self.graph, Interval(lo, hi), self._contact_cache)
        return self._index

    @property
    def compiled(self) -> CompiledTVG | None:
        """The current index (None until the first query compiles one)."""
        return self._index

    @property
    def contact_cache(self) -> LazyContactCache:
        """The engine's lazy black-box lowering cache."""
        return self._contact_cache

    def require_graph(self, graph: TimeVaryingGraph, caller: str) -> None:
        """Raise unless this engine was built for ``graph``.

        The one shared guard every ``engine=`` hook runs before
        answering, so a mismatched engine fails the same way at every
        entry point.
        """
        if self.graph is not graph:
            raise TimeDomainError(
                f"the engine passed to {caller} was built for a different graph"
            )

    def _resolve_horizon(self, horizon: int | None) -> int:
        if horizon is not None:
            return horizon
        if self.graph.lifetime.bounded:
            return int(self.graph.lifetime.end)
        raise TimeDomainError(
            "an explicit horizon is required on graphs with unbounded lifetime"
        )

    # -- the shared successor kernel -------------------------------------------

    def successors(
        self,
        node: Hashable,
        ready: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
    ) -> list[tuple[Edge, int, int]]:
        """All feasible ``(edge, departure, arrival)`` moves from ``(node, ready)``.

        Departures are < ``horizon`` and listed in increasing order per
        edge, edges in insertion order — the exact enumeration order of
        the interpretive :func:`repro.core.traversal.successors`.
        """
        horizon = self._resolve_horizon(horizon)
        if ready >= horizon:
            return []
        index = self.index_for(min(ready, horizon), horizon)
        node_idx = index.node_index[node]
        moves: list[tuple[Edge, int, int]] = []
        if semantics.is_no_wait:
            for ei in index.out_edge_indices(node_idx):
                if index.present_at(ei, ready):
                    moves.append(
                        (index.edge_list[ei], ready, index.arrival(ei, ready))
                    )
            return moves
        latest = semantics.latest_departure(ready, horizon)
        for ei in index.out_edge_indices(node_idx):
            edge = index.edge_list[ei]
            const = int(index.const_latency[ei])
            if const >= 0:
                moves.extend(
                    (edge, dep, dep + const)
                    for dep in index.departures(ei, ready, latest)
                )
            else:
                moves.extend(
                    (edge, dep, dep + edge.latency(dep))
                    for dep in index.departures(ei, ready, latest)
                )
        return moves

    # -- accelerated single-source searches ------------------------------------

    def reachable_states(
        self,
        sources: Iterable[tuple[Hashable, int]],
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        max_hops: int | None = None,
    ) -> set[tuple[Hashable, int]]:
        from repro.core.traversal import reachable_states

        return reachable_states(
            self.graph, sources, semantics, horizon, max_hops, engine=self
        )

    def earliest_arrivals(
        self,
        source: Hashable,
        start_time: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
    ) -> dict[Hashable, int]:
        from repro.core.traversal import earliest_arrivals

        return earliest_arrivals(
            self.graph, source, start_time, semantics, horizon, engine=self
        )

    def foremost_journey(
        self,
        source: Hashable,
        target: Hashable,
        start_time: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        max_hops: int = 64,
    ):
        from repro.core.traversal import foremost_journey

        return foremost_journey(
            self.graph, source, target, start_time, semantics, horizon,
            max_hops, engine=self,
        )

    def earliest_arrivals_unbounded(
        self, source: Hashable, start_time: int, horizon: int
    ) -> dict[Hashable, int]:
        """Exact earliest arrivals under unbounded waiting, node-level.

        With unbounded waiting, the feasible departures from a later
        visit of a node are a *subset* of those from its earliest visit,
        so expanding each node once — from its earliest known arrival —
        covers every journey.  That collapses the temporal-state Dijkstra
        to a plain node Dijkstra: per settled node, each out-edge costs
        one binary search (constant latency) or one departure scan
        (varying latency) instead of one expansion per visit date.
        Valid only for ``WAIT``; bounded regimes go through the generic
        state-level search.
        """
        index = self.index_for(min(start_time, horizon), horizon)
        best: dict[Hashable, int] = {source: start_time}
        best_idx: dict[int, int] = {index.node_index[source]: start_time}
        settled: set[int] = set()
        heap: list[tuple[int, int]] = [(start_time, index.node_index[source])]
        while heap:
            ready, node_idx = heapq.heappop(heap)
            if node_idx in settled:
                continue
            settled.add(node_idx)
            if ready >= horizon:
                continue  # reachable, but no departure fits the horizon
            for ei in index.out_edge_indices(node_idx):
                target = index.target_idx[ei]
                if target in settled:
                    continue  # settled earlier, hence with arrival <= any new one
                const = int(index.const_latency[ei])
                if const >= 0:
                    departure = index.next_present(ei, ready, horizon)
                    if departure is None:
                        continue
                    arrival = departure + const
                else:
                    departures = index.departures(ei, ready, horizon)
                    if not departures:
                        continue
                    latency = index.edge_list[ei].latency
                    arrival = min(d + latency(d) for d in departures)
                if arrival < best_idx.get(target, arrival + 1):
                    best_idx[target] = arrival
                    best[index.nodes[target]] = arrival
                    heapq.heappush(heap, (arrival, target))
        return best

    # -- the batched multi-source sweep ----------------------------------------

    def arrival_matrix(
        self,
        start_time: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        shards: int | None = None,
        cluster: "ClusterExecutor | None" = None,
        kernel: str | None = None,
    ) -> tuple[list[Hashable], np.ndarray]:
        """All-pairs earliest arrivals, in one pass.

        Returns ``(nodes, matrix)`` where ``matrix[i, j]`` is the first
        date a journey from ``nodes[i]`` (ready at ``start_time``) can
        arrive at ``nodes[j]`` — :data:`UNREACHED` for pairs no journey
        joins, ``start_time`` on the diagonal (the trivial journey).
        Departures are bounded by ``horizon``; arrivals may exceed it,
        exactly as in :func:`repro.core.traversal.earliest_arrivals`.

        One temporal-state search explores the same ``(node, time)``
        space whichever node it starts from, so instead of ``n``
        independent searches each state carries an integer bitmask of
        the sources that reach it.  Arrivals are strictly later than
        departures (latencies are positive), so processing states in
        increasing time order makes every mask final the moment its
        state is popped — and the first pop that brings source ``i``'s
        bit to node ``j`` is the pair's earliest arrival.  One pass, no
        fixpoint iteration.

        ``shards`` > 1 partitions the source set into blocks and sweeps
        each in its own worker process
        (:mod:`repro.core.parallel`) — element-for-element the same
        matrix; requests of 1 shard (or tiny graphs, where process
        overhead dominates) run the serial sweep.  ``cluster`` ships
        the same blocks to *remote* sweep workers instead
        (:mod:`repro.service.cluster`) — still the same matrix, with
        any failed block transparently re-swept locally; it takes
        precedence over ``shards`` when it routes the graph.

        Every route lowers the sweep to one plain-data
        :class:`~repro.core.parallel.SweepPlan` and runs a *sweep
        kernel* over it (:mod:`repro.core.sweep_kernel`): the native
        uint64 ``"bitset"`` kernel by default, or the per-state
        ``"bignum"`` oracle via ``kernel=`` (or the
        :envvar:`REPRO_SWEEP_KERNEL` environment variable).
        """
        horizon = self._resolve_horizon(horizon)
        if cluster is not None and cluster.routes(self.graph.node_count):
            return cluster.arrival_matrix(
                self, start_time, semantics, horizon, kernel=kernel
            )
        if shards is not None:
            from repro.core import parallel

            if parallel.effective_shards(self.graph.node_count, shards) > 1:
                return parallel.sharded_arrival_matrix(
                    self, start_time, semantics, horizon, shards, kernel=kernel
                )
        from repro.core.parallel import build_sweep_plan
        from repro.core.sweep_kernel import sweep_block

        nodes, plan = build_sweep_plan(self, start_time, semantics, horizon)
        return nodes, sweep_block(plan, range(plan.n), kernel=kernel)

    def arrival_matrix_incremental(
        self,
        start_time: int,
        previous: tuple[Sequence[Hashable], np.ndarray],
        deltas: "Sequence[MutationDelta] | None",
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        kernel: str | None = None,
        max_rows: int | None = None,
    ) -> tuple[list[Hashable], np.ndarray, int] | None:
        """Patch a cached arrival matrix across a mutation-delta chain.

        ``previous`` is a ``(nodes, matrix)`` pair some earlier
        :meth:`arrival_matrix` call produced **for the same**
        ``(start_time, semantics, horizon)`` query on an ancestor
        version of this graph, and ``deltas`` the complete chain of
        mutations since (:meth:`TimeVaryingGraph.deltas_since`).  The
        dirty edges' tails bound the *cone* of source rows whose
        answers can have changed — a row with no finite old arrival at
        any dirty tail cannot gain or lose a journey through a dirty
        edge (see :func:`~repro.core.sweep_kernel.affected_rows`) —
        so only those rows are re-swept and merged over a copy of the
        old matrix.

        Returns ``(nodes, matrix, rows_reswept)``, entry-for-entry
        equal to a from-scratch sweep, or None when the incremental
        path does not apply: unknowable chain (``deltas is None``),
        node additions (the matrix axes change), or a node-order
        mismatch with ``previous``.  ``max_rows`` optionally bounds the
        cone: a larger one also returns None, letting the caller prefer
        a full (possibly sharded or clustered) sweep when re-sweeping
        most rows anyway.  The input matrix is never mutated.
        """
        horizon = self._resolve_horizon(horizon)
        if deltas is None:
            return None
        prev_nodes, prev_matrix = previous
        if any(d.kind == "add_node" for d in deltas):
            return None
        from repro.core.parallel import build_sweep_plan
        from repro.core.sweep_kernel import affected_rows, merge_rows, sweep_block

        nodes, plan = build_sweep_plan(self, start_time, semantics, horizon)
        if list(prev_nodes) != nodes or prev_matrix.shape != (plan.n, plan.n):
            return None
        node_index = {node: i for i, node in enumerate(nodes)}
        tails: dict[int, None] = {}
        for delta in deltas:
            tail = node_index.get(delta.source)
            if tail is None:
                return None
            tails[tail] = None
        rows = affected_rows(prev_matrix, tuple(tails))
        if rows.size == 0:
            return nodes, prev_matrix.copy(), 0
        if max_rows is not None and rows.size > max_rows:
            return None
        block = sweep_block(plan, rows.tolist(), kernel=kernel)
        return nodes, merge_rows(prev_matrix, rows, block), int(rows.size)

    def reachability_packed(
        self,
        start_time: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        shards: int | None = None,
        cluster: "ClusterExecutor | None" = None,
        kernel: str | None = None,
    ) -> tuple[list[Hashable], np.ndarray]:
        """Every source's reachable set, bit-packed — the primary form.

        Returns ``(nodes, packed)`` where ``packed`` is the
        ``(ceil(n/8), n)`` uint8 matrix of
        ``np.packbits(reachable, axis=0, bitorder="little")``: bit ``i``
        of column ``j`` (i.e. ``packed[i >> 3, j] >> (i & 7) & 1``) says
        node ``nodes[j]`` is reachable from source ``nodes[i]`` (each
        node trivially reaches itself).  Derived from
        :meth:`arrival_matrix`: reachable means the earliest arrival is
        finite.  Consumers that count or test bits
        (:mod:`repro.analysis.reachability`,
        :mod:`repro.analysis.connectivity`) work on this form directly —
        popcounts and column compares are byte ops;
        :meth:`reachability_masks` remains as a compatibility view that
        rebuilds Python ints per column.
        """
        nodes, arrival = self.arrival_matrix(
            start_time, semantics, horizon, shards, cluster, kernel
        )
        return nodes, np.packbits(arrival != UNREACHED, axis=0, bitorder="little")

    def reachability_masks(
        self,
        start_time: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        shards: int | None = None,
        cluster: "ClusterExecutor | None" = None,
        kernel: str | None = None,
    ) -> tuple[list[Hashable], list[int]]:
        """Every source's reachable set as per-column Python int masks.

        Compatibility view over :meth:`reachability_packed`: bit ``i``
        of ``masks[j]`` says node ``nodes[j]`` is reachable from source
        ``nodes[i]``.  The packed bytes are already little-endian with
        row ``i`` at bit ``i``, so each column converts with one
        ``int.from_bytes`` — prefer the packed form where the round
        trip through bignums isn't needed.
        """
        nodes, packed = self.reachability_packed(
            start_time, semantics, horizon, shards, cluster, kernel
        )
        if not nodes:
            return nodes, []
        column_bytes = packed.T.tobytes()
        width = packed.shape[0]
        masks = [
            int.from_bytes(column_bytes[j * width : (j + 1) * width], "little")
            for j in range(len(nodes))
        ]
        return nodes, masks

    def reachability_matrix(
        self,
        start_time: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        shards: int | None = None,
        cluster: "ClusterExecutor | None" = None,
        kernel: str | None = None,
    ) -> tuple[list[Hashable], np.ndarray]:
        """Boolean reachability matrix via the batched sweep.

        Same contract as
        :func:`repro.analysis.reachability.reachability_matrix`.
        """
        nodes, arrival = self.arrival_matrix(
            start_time, semantics, horizon, shards, cluster, kernel
        )
        matrix = arrival != UNREACHED
        np.fill_diagonal(matrix, True)
        return nodes, matrix

    # -- simulator fast path ---------------------------------------------------

    def out_edges_at(self, node: Hashable, time: int) -> list[Edge]:
        """Edges leaving ``node`` present at ``time`` (compiled lookup).

        Insertion-ordered, matching
        :meth:`TimeVaryingGraph.out_edges_at`, so a simulation driven
        through the engine is transmission-for-transmission identical.
        """
        index = self.index_for(time, time + 1)
        node_idx = index.node_index[node]
        return [
            index.edge_list[ei]
            for ei in index.out_edge_indices(node_idx)
            if index.present_at(ei, time)
        ]

    def __repr__(self) -> str:
        return f"TemporalEngine({self.graph!r}, index={self._index!r})"
