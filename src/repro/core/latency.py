"""Latency functions ``zeta : E x T -> T``.

The latency of an edge is the time a traversal takes when started at a
given date, and the paper lets it *vary with time* — Table 1's edge
``e0`` has latency ``(p - 1) * t``, which is what multiplies the clock by
``p`` and makes the Gödel-style word-in-clock encoding work.  Latencies
must be positive: a zero or negative latency would let a journey take
infinitely many edges in finite time.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import TimeDomainError


class LatencyFunction:
    """Base class for latency functions.

    Subclasses implement :meth:`raw`; :meth:`__call__` wraps it with the
    positivity check so no construction can smuggle in a non-advancing
    traversal.
    """

    def raw(self, time: int) -> int:
        raise NotImplementedError

    def __call__(self, time: int) -> int:
        value = self.raw(time)
        if not isinstance(value, int):
            raise TimeDomainError(
                f"latency must be an int, got {value!r} at time {time}"
            )
        if value <= 0:
            raise TimeDomainError(
                f"latency must be positive, got {value} at time {time}"
            )
        return value

    def shifted(self, delta: int) -> "LatencyFunction":
        """Latency translated in time: new(t) = old(t - delta)."""
        return _MappedLatency(self, lambda t: t - delta, scale=1, label=f"shift {delta}")

    def dilated(self, factor: int) -> "LatencyFunction":
        """Time dilation companion to presence dilation (Theorem 2.3).

        Under sparse dilation the edge fires only at dates ``t*factor``
        and its traversal must land on the dilated image of the original
        arrival, so the latency scales by the same factor:
        ``new(t*factor) = factor * old(t)``.
        """
        if factor <= 0:
            raise TimeDomainError(f"dilation factor must be positive, got {factor}")
        return _MappedLatency(
            self, lambda t: t // factor, scale=factor, label=f"dilate {factor}"
        )


class ConstantLatency(LatencyFunction):
    """The same traversal time at every date."""

    def __init__(self, value: int) -> None:
        if not isinstance(value, int) or value <= 0:
            raise TimeDomainError(f"constant latency must be a positive int, got {value!r}")
        self.value = value

    def raw(self, time: int) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"constant_latency({self.value})"


class AffineLatency(LatencyFunction):
    """Latency ``a*t + b`` — the form Table 1 uses (``(p-1)t``)."""

    def __init__(self, slope: int, intercept: int = 0) -> None:
        self.slope = slope
        self.intercept = intercept

    def raw(self, time: int) -> int:
        return self.slope * time + self.intercept

    def __repr__(self) -> str:
        return f"affine_latency({self.slope}, {self.intercept})"


class TableLatency(LatencyFunction):
    """Latency from an explicit date -> duration table with a default."""

    def __init__(self, table: Mapping[int, int], default: int | None = None) -> None:
        self.table = dict(table)
        self.default = default

    def raw(self, time: int) -> int:
        if time in self.table:
            return self.table[time]
        if self.default is None:
            raise TimeDomainError(f"no latency tabulated for time {time} and no default")
        return self.default

    def __repr__(self) -> str:
        return f"table_latency({len(self.table)} entries, default={self.default})"


class FunctionLatency(LatencyFunction):
    """Latency from an arbitrary callable ``T -> T``."""

    def __init__(self, function: Callable[[int], int], label: str | None = None) -> None:
        self.function = function
        self.label = label or getattr(function, "__name__", "function")

    def raw(self, time: int) -> int:
        return self.function(time)

    def __repr__(self) -> str:
        return f"function_latency({self.label})"


class _MappedLatency(LatencyFunction):
    """Inner latency evaluated through a time reparameterization."""

    def __init__(
        self,
        inner: LatencyFunction,
        time_map: Callable[[int], int],
        scale: int,
        label: str,
    ) -> None:
        self.inner = inner
        self.time_map = time_map
        self.scale = scale
        self.label = label

    def raw(self, time: int) -> int:
        return self.scale * self.inner.raw(self.time_map(time))

    def __repr__(self) -> str:
        return f"{self.inner!r}.mapped({self.label})"


# -- public constructors ------------------------------------------------------


def constant_latency(value: int = 1) -> LatencyFunction:
    """Fixed traversal time; ``constant_latency(1)`` is the unit-latency default."""
    return ConstantLatency(value)


def affine_latency(slope: int, intercept: int = 0) -> LatencyFunction:
    """Latency ``slope * t + intercept``, as in Table 1 of the paper."""
    return AffineLatency(slope, intercept)


def table_latency(table: Mapping[int, int], default: int | None = None) -> LatencyFunction:
    """Latency looked up per date, with an optional default."""
    return TableLatency(table, default)


def function_latency(function: Callable[[int], int], label: str | None = None) -> LatencyFunction:
    """Latency computed by an arbitrary callable."""
    return FunctionLatency(function, label)
