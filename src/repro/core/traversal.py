"""Journey search over time-varying graphs.

All search is over *temporal states* ``(node, time)`` — "the walker (or
message) is at ``node``, ready to depart from date ``time`` onward".  The
waiting semantics decides which departure dates are reachable from a
state:

* no-wait: only ``time`` itself;
* wait: every date in the edge's presence support up to the horizon;
* wait[d]: every present date in ``[time, time + d]``.

Every function takes an explicit ``horizon`` (exclusive upper time
bound).  TVGs may live forever and presence functions may be black-box
callables, so unbounded search is never attempted implicitly.

Every search here runs over one *successor kernel* — "all feasible
single-hop moves out of a temporal state".  The default kernel is the
interpretive one (per-edge presence scans, the ground-truth oracle);
passing ``engine=`` a :class:`~repro.core.engine.TemporalEngine` swaps
in the compiled contact-sequence kernel while the search algorithm —
and therefore the result — stays identical.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator

from repro.core.edges import Edge
from repro.core.intervals import Interval
from repro.core.journeys import Hop, Journey
from repro.core.semantics import NO_WAIT, WaitingSemantics
from repro.core.tvg import TimeVaryingGraph
from repro.errors import TimeDomainError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.core.engine import TemporalEngine

#: A successor kernel: ``(node, ready) -> [(edge, departure, arrival)]``.
StepFn = Callable[[Hashable, int], "list[tuple[Edge, int, int]]"]


def edge_departures(
    edge: Edge,
    ready: int,
    semantics: WaitingSemantics,
    horizon: int,
) -> Iterator[int]:
    """Feasible departure dates on ``edge`` for a walker ready at ``ready``.

    Dates are yielded in increasing order and are all < ``horizon``.
    """
    if ready >= horizon:
        return
    if semantics.is_no_wait:
        if edge.present_at(ready):
            yield ready
        return
    latest = semantics.latest_departure(ready, horizon)
    support = edge.presence.support(Interval(ready, latest))
    yield from support.times()


def successors(
    graph: TimeVaryingGraph,
    node: Hashable,
    ready: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
) -> Iterator[tuple[Edge, int, int]]:
    """All feasible single-hop moves from the state ``(node, ready)``.

    Yields ``(edge, departure, arrival)`` triples.  ``horizon`` bounds
    departure dates; it defaults to the graph's (finite) lifetime end.
    With ``engine=`` the moves come from the compiled kernel instead of
    presence scans (same triples, same order).
    """
    horizon = _resolve_horizon(graph, horizon)
    if engine is not None:
        engine.require_graph(graph, "a traversal")
        yield from engine.successors(node, ready, semantics, horizon)
        return
    for edge in graph.out_edges(node):
        for departure in edge_departures(edge, ready, semantics, horizon):
            yield edge, departure, departure + edge.latency(departure)


def _step_fn(
    graph: TimeVaryingGraph,
    semantics: WaitingSemantics,
    horizon: int,
    engine: "TemporalEngine | None",
) -> StepFn:
    """Bind the successor kernel the searches below iterate over."""
    if engine is not None:
        engine.require_graph(graph, "a traversal")
        return lambda node, ready: engine.successors(node, ready, semantics, horizon)

    def step(node: Hashable, ready: int) -> list[tuple[Edge, int, int]]:
        return [
            (edge, departure, departure + edge.latency(departure))
            for edge in graph.out_edges(node)
            for departure in edge_departures(edge, ready, semantics, horizon)
        ]

    return step


def _resolve_horizon(graph: TimeVaryingGraph, horizon: int | None) -> int:
    if horizon is not None:
        return horizon
    if graph.lifetime.bounded:
        return int(graph.lifetime.end)
    raise TimeDomainError(
        "an explicit horizon is required on graphs with unbounded lifetime"
    )


def enumerate_journeys(
    graph: TimeVaryingGraph,
    sources: Iterable[Hashable] | Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_hops: int = 16,
    targets: Iterable[Hashable] | None = None,
) -> Iterator[Journey]:
    """Every feasible journey from the sources, in DFS order.

    A journey is yielded for each feasible hop sequence of length 1 to
    ``max_hops`` departing no earlier than ``start_time``.  When
    ``targets`` is given, only journeys ending there are yielded (but the
    search still explores through other nodes).

    The number of journeys is exponential in ``max_hops`` in the worst
    case; this enumerator is the ground-truth oracle that the language
    machinery is checked against, not the fast path.
    """
    horizon = _resolve_horizon(graph, horizon)
    if isinstance(sources, (str, bytes)) or not isinstance(sources, Iterable):
        sources = [sources]
    target_set = None if targets is None else set(targets)

    def expand(prefix: list[Hop], node: Hashable, ready: int) -> Iterator[Journey]:
        if len(prefix) >= max_hops:
            return
        for edge in graph.out_edges(node):
            for departure in edge_departures(edge, ready, semantics, horizon):
                hop = Hop(edge, departure)
                prefix.append(hop)
                if target_set is None or edge.target in target_set:
                    yield Journey(list(prefix))
                yield from expand(prefix, edge.target, hop.arrival)
                prefix.pop()

    for source in sources:
        yield from expand([], source, start_time)


def reachable_states(
    graph: TimeVaryingGraph,
    sources: Iterable[tuple[Hashable, int]],
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_hops: int | None = None,
    engine: "TemporalEngine | None" = None,
) -> set[tuple[Hashable, int]]:
    """All temporal states ``(node, arrival)`` reachable from the sources.

    Each source is a ``(node, ready_time)`` pair (arrival 0 hops in).
    The returned set includes the sources themselves.  States are
    deduplicated, so the search runs in time polynomial in the number of
    distinct ``(node, time)`` pairs rather than the number of journeys.
    """
    horizon = _resolve_horizon(graph, horizon)
    step = _step_fn(graph, semantics, horizon, engine)
    seen: set[tuple[Hashable, int]] = set()
    frontier: list[tuple[Hashable, int, int]] = []
    for node, ready in sources:
        if (node, ready) not in seen:
            seen.add((node, ready))
            frontier.append((node, ready, 0))
    while frontier:
        node, ready, hops = frontier.pop()
        if max_hops is not None and hops >= max_hops:
            continue
        for edge, _departure, arrival in step(node, ready):
            state = (edge.target, arrival)
            if state not in seen:
                seen.add(state)
                frontier.append((edge.target, arrival, hops + 1))
    return seen


def reachable_nodes(
    graph: TimeVaryingGraph,
    source: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
) -> set[Hashable]:
    """Nodes reachable from ``source`` by a feasible journey (source included)."""
    states = reachable_states(
        graph, [(source, start_time)], semantics, horizon, engine=engine
    )
    return {node for node, _time in states}


def can_reach(
    graph: TimeVaryingGraph,
    source: Hashable,
    target: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
) -> bool:
    """Whether a feasible journey connects ``source`` to ``target``."""
    return target in reachable_nodes(
        graph, source, start_time, semantics, horizon, engine=engine
    )


def earliest_arrivals(
    graph: TimeVaryingGraph,
    source: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    engine: "TemporalEngine | None" = None,
) -> dict[Hashable, int]:
    """Earliest arrival date at every reachable node (*foremost* journeys).

    A Dijkstra-style search over temporal states ordered by time.  The
    result maps each reachable node to the earliest date a feasible
    journey from ``(source, start_time)`` can arrive there; the source
    maps to ``start_time``.  Exact even for non-FIFO latencies, because
    every feasible departure up to the horizon is examined.
    """
    horizon = _resolve_horizon(graph, horizon)
    if engine is not None and semantics.unbounded:
        # Unbounded waiting admits an exact node-level Dijkstra (later
        # visits of a node can never depart anywhere its earliest visit
        # could not), much cheaper than the temporal-state search.
        engine.require_graph(graph, "a traversal")
        return engine.earliest_arrivals_unbounded(source, start_time, horizon)
    step = _step_fn(graph, semantics, horizon, engine)
    best: dict[Hashable, int] = {source: start_time}
    expanded: set[tuple[Hashable, int]] = set()
    queue: list[tuple[int, int, Hashable]] = [(start_time, 0, source)]
    tie = 0
    while queue:
        ready, _t, node = heapq.heappop(queue)
        if (node, ready) in expanded:
            continue
        expanded.add((node, ready))
        for edge, _departure, arrival in step(node, ready):
            if arrival < best.get(edge.target, arrival + 1):
                best[edge.target] = arrival
            if (edge.target, arrival) not in expanded:
                tie += 1
                heapq.heappush(queue, (arrival, tie, edge.target))
    return best


def foremost_journey(
    graph: TimeVaryingGraph,
    source: Hashable,
    target: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_hops: int = 64,
    engine: "TemporalEngine | None" = None,
) -> Journey | None:
    """A journey arriving at ``target`` as early as any feasible journey can.

    Returns ``None`` when ``target`` is unreachable.  The search keeps
    parent pointers on temporal states, so the journey it rebuilds is
    guaranteed feasible and foremost.
    """
    horizon = _resolve_horizon(graph, horizon)
    step = _step_fn(graph, semantics, horizon, engine)
    parents: dict[tuple[Hashable, int], tuple[Hashable, int, Hop] | None] = {
        (source, start_time): None
    }
    queue: list[tuple[int, int, Hashable, int]] = [(start_time, 0, source, 0)]
    tie = 0
    while queue:
        ready, _t, node, hops = heapq.heappop(queue)
        if node == target and ready > start_time:
            return _rebuild(parents, (node, ready))
        if node == target and node == source and ready == start_time:
            # Zero-hop "journey" is not a journey (needs >= 1 hop); keep going.
            pass
        if hops >= max_hops:
            continue
        for edge, departure, arrival in step(node, ready):
            state = (edge.target, arrival)
            if state not in parents:
                parents[state] = (node, ready, Hop(edge, departure))
                tie += 1
                heapq.heappush(queue, (arrival, tie, edge.target, hops + 1))
    return None


def _rebuild(
    parents: dict[tuple[Hashable, int], tuple[Hashable, int, Hop] | None],
    state: tuple[Hashable, int],
) -> Journey:
    hops: list[Hop] = []
    cursor: tuple[Hashable, int] | None = state
    while cursor is not None:
        entry = parents[cursor]
        if entry is None:
            break
        node, ready, hop = entry
        hops.append(hop)
        cursor = (node, ready)
    hops.reverse()
    return Journey(hops)
