"""Snapshots and footprints.

A *snapshot* ``G_t`` is the static digraph of edges present at date ``t``;
the *footprint* is the union of snapshots over a window.  The paper's
motivating observation — the network "may actually be disconnected at
every time instant" while still being temporally connected — is a
statement about snapshots versus journeys, and the simulation benchmarks
verify it through these functions.

Snapshots are returned as :mod:`networkx` multigraphs so the whole static
toolbox (components, shortest paths) applies directly.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from repro.core.intervals import Interval
from repro.core.tvg import TimeVaryingGraph


def snapshot(graph: TimeVaryingGraph, time: int) -> nx.MultiDiGraph:
    """The static digraph of edges present at ``time``.

    All TVG nodes are included, even isolated ones; edge data carries the
    key, label, and that date's latency.
    """
    static = nx.MultiDiGraph()
    static.add_nodes_from(graph.nodes)
    for edge in graph.edges_at(time):
        static.add_edge(
            edge.source,
            edge.target,
            key=edge.key,
            label=edge.label,
            latency=edge.latency(time),
        )
    return static


def snapshots(
    graph: TimeVaryingGraph, start: int, end: int
) -> Iterator[tuple[int, nx.MultiDiGraph]]:
    """The snapshot sequence over ``[start, end)``."""
    for time in range(start, end):
        yield time, snapshot(graph, time)


def footprint(graph: TimeVaryingGraph, start: int, end: int) -> nx.MultiDiGraph:
    """The union of snapshots over ``[start, end)``.

    Each TVG edge appears at most once, annotated with its presence
    support within the window.
    """
    static = nx.MultiDiGraph()
    static.add_nodes_from(graph.nodes)
    window = Interval(start, end)
    for edge in graph.edges:
        support = edge.presence.support(window)
        if support:
            static.add_edge(
                edge.source,
                edge.target,
                key=edge.key,
                label=edge.label,
                support=support,
            )
    return static


def is_connected_at(graph: TimeVaryingGraph, time: int) -> bool:
    """Whether the snapshot at ``time`` is weakly connected."""
    if graph.node_count <= 1:
        return True
    return nx.is_weakly_connected(snapshot(graph, time))


def always_disconnected(graph: TimeVaryingGraph, start: int, end: int) -> bool:
    """Whether *every* snapshot in ``[start, end)`` is disconnected.

    True for the highly dynamic networks the paper targets: no instant
    offers end-to-end connectivity, yet journeys may still exist.
    """
    return all(not is_connected_at(graph, t) for t in range(start, end))


def presence_density(graph: TimeVaryingGraph, start: int, end: int) -> float:
    """Fraction of (edge, date) slots that are present over the window."""
    slots = graph.edge_count * (end - start)
    if slots == 0:
        return 0.0
    window = Interval(start, end)
    present = sum(edge.presence.support(window).total_length() for edge in graph.edges)
    return present / slots
