"""The native sweep kernels behind the all-pairs arrival matrix.

Every consumer of the batched arrival sweep — the serial
:meth:`~repro.core.engine.TemporalEngine.arrival_matrix`, the
process-sharded sweep (:mod:`repro.core.parallel`), the distributed
cluster workers (:mod:`repro.service.cluster`), and the service's
shared cached sweep — lowers the sweep to one plain-data
:class:`~repro.core.parallel.SweepPlan` and then runs a *kernel* over
it.  This module owns the kernels:

``bitset`` (the default)
    The frontier is a ``(n, ceil(b/64))`` uint64 numpy matrix (``b`` =
    source-block width): bit ``i`` of node ``j``'s row says source
    ``i``'s journeys have mass pending at ``j``.  Pending states are
    bucketed *by date* — arrivals are strictly later than departures
    (latencies are positive), so every mask pending at date ``t`` is
    final before any date-``t`` state is expanded, and a whole date
    processes as vectorized row ops: ``new = mask & ~node_mask``,
    ``node_mask |= new``, arrival stamping by ``np.unpackbits`` +
    ``np.nonzero`` on the newly-set bits, and successor pushes grouped
    per ``(arrival date, target)`` so frontier merges are one
    ``np.bitwise_or.reduceat`` and a fancy-indexed ``|=`` instead of a
    dict probe and a bignum OR per contact.

``bignum``
    The original per-state sweep: a heap of ``(date, node)`` states
    whose masks are Python arbitrary-precision ints.  Kept as the
    selectable ground-truth oracle — slower, but independent of every
    numpy vectorization above, so the property suites can prove the
    kernels bit-exactly equal (``tests/properties/test_property_kernel``
    does, under all three waiting semantics, black-box presences
    included).

Kernel choice threads through ``kernel=`` keywords from the engine, the
shard pool, the cluster executor, the service, and the CLI, and the
:envvar:`REPRO_SWEEP_KERNEL` environment variable overrides the default
for whole runs (the test suites re-run against either kernel via
``pytest --sweep-kernel``).

Both kernels report :class:`SweepStats` on request — pops, pushes, and
*dead pops* (heap entries whose pending mass was already consumed).
The date-bucketed queue pushes each date exactly once when its bucket
is created, so the bitset kernel has none by construction; the bignum
sweep historically spun dead pops on duplicate seed sources, fixed here
by seeding one heap entry per distinct ``(node, date)`` key.
"""

from __future__ import annotations

import heapq
import os
import weakref
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, NamedTuple, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.parallel import SweepPlan

#: Sentinel arrival date for unreachable pairs — larger than any real
#: date, so ``matrix <= t`` comparisons need no special casing.
#: (Re-exported by :mod:`repro.core.engine`, its historical home.)
UNREACHED: int = np.iinfo(np.int64).max

#: The selectable sweep kernels, fastest first.
KERNELS: tuple[str, ...] = ("bitset", "bignum")

#: Kernel used when neither a ``kernel=`` argument nor the environment
#: names one.
DEFAULT_KERNEL: str = "bitset"

#: Environment override for the default kernel — handy for re-running a
#: whole suite or service against the bignum oracle without touching
#: call sites.
KERNEL_ENV: str = "REPRO_SWEEP_KERNEL"


def resolve_kernel(kernel: str | None = None) -> str:
    """The kernel a sweep actually runs: explicit argument first, then
    :envvar:`REPRO_SWEEP_KERNEL`, then :data:`DEFAULT_KERNEL`.

    Raises :class:`ValueError` for unknown names (including a bad
    environment value), so a typo fails the first sweep loudly instead
    of silently picking a default.
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown sweep kernel {kernel!r}; choose from {', '.join(KERNELS)}"
        )
    return kernel


@dataclass
class SweepStats:
    """Counters one kernel run fills in (pass ``stats=`` to collect).

    ``pops`` counts queue entries that carried pending mass (dates for
    the bitset kernel, ``(date, node)`` states for bignum), ``dead_pops``
    the entries whose mass was already consumed when popped, and
    ``pushes`` the successor merges performed.
    """

    kernel: str = ""
    pops: int = 0
    dead_pops: int = 0
    pushes: int = 0


def sweep_block(
    plan: "SweepPlan",
    sources: Sequence[int],
    kernel: str | None = None,
    stats: SweepStats | None = None,
) -> np.ndarray:
    """The arrival sweep of one source block, on the chosen kernel.

    Row ``r`` of the returned ``(len(sources), plan.n)`` int64 matrix is
    the earliest-arrival row of source ``sources[r]`` — identical
    whichever kernel runs, because a source's arrival dates never depend
    on which other sources share the pass (proven bit-exact by the
    kernel property suite).
    """
    kernel = resolve_kernel(kernel)
    if stats is not None:
        stats.kernel = kernel
    if kernel == "bignum":
        return sweep_block_bignum(plan, sources, stats)
    return sweep_block_bitset(plan, sources, stats)


# -- incremental maintenance helpers ------------------------------------------


def affected_rows(previous: np.ndarray, tails: Sequence[int]) -> np.ndarray:
    """Source rows of ``previous`` whose answers a dirty edge can change.

    ``tails`` are the node indices at which some edge's schedule changed
    (its tail — where journeys board it).  Any journey whose arrival
    date changes, in either direction, crosses a dirty edge; the
    *first* dirty edge on that journey is reached by an all-clean
    prefix, which was equally valid before the mutation — so the old
    matrix already records a finite arrival at that edge's tail.  Rows
    with ``previous[i, tail] == UNREACHED`` for every dirty tail are
    therefore exact as they stand, under every waiting semantics (the
    argument never inspects departure eligibility, only prefix
    validity).  Conservative: a returned row may turn out unchanged.
    """
    if len(tails) == 0:
        return np.empty(0, dtype=np.int64)
    tail_idx = np.asarray(tuple(tails), dtype=np.int64)
    return np.flatnonzero(
        (previous[:, tail_idx] != UNREACHED).any(axis=1)
    ).astype(np.int64)


def merge_rows(
    previous: np.ndarray, rows: Sequence[int], block: np.ndarray
) -> np.ndarray:
    """A copy of ``previous`` with ``rows`` replaced by ``block``'s rows.

    ``block`` is the output of :func:`sweep_block` over exactly
    ``rows`` (in order); the merge never mutates ``previous`` — cached
    matrices stay valid for their own version.
    """
    merged = previous.copy()
    if len(rows):
        merged[np.asarray(tuple(rows), dtype=np.int64)] = block
    return merged


# -- the bitset kernel ---------------------------------------------------------


class _BitsetLowering(NamedTuple):
    """A plan's contacts flattened, sorted, and grouped — everything in
    :func:`sweep_block_bitset` that does not depend on the source block,
    so repeated sweeps of one plan (sharded blocks, incremental cone
    re-sweeps) pay the O(contacts) lowering once."""

    dep_s: np.ndarray
    arr_s: np.ndarray
    tgt_s: np.ndarray
    src_s: np.ndarray
    group_starts_all: np.ndarray
    dates: np.ndarray
    date_lo: np.ndarray
    date_hi: np.ndarray
    group_lo: np.ndarray
    group_hi: np.ndarray


#: Cached lowerings keyed by plan identity (a weakref callback evicts
#: the slot when the plan is collected; the liveness check guards
#: against id reuse).  Plans are immutable, so identity is sound.
_BITSET_LOWERINGS: dict[int, tuple["weakref.ref", _BitsetLowering]] = {}


def _lower_plan_bitset(plan: "SweepPlan") -> _BitsetLowering:
    n = plan.n
    contacts = plan.contacts
    edge_count = len(contacts)
    edge_len = np.fromiter(
        (len(seq) for seq in contacts), dtype=np.int64, count=edge_count
    )
    total_contacts = int(edge_len.sum())
    out_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([len(row) for row in plan.out_edges], out=out_offsets[1:])
    out_flat = np.fromiter(
        (ei for row in plan.out_edges for ei in row),
        dtype=np.int64,
        count=int(out_offsets[-1]),
    )
    src_of_edge = np.empty(edge_count, dtype=np.int64)
    src_of_edge[out_flat] = np.repeat(np.arange(n), np.diff(out_offsets))
    dep_flat = np.fromiter(
        (d for seq in contacts for d in seq), dtype=np.int64, count=total_contacts
    )
    arr_flat = np.fromiter(
        (a for seq in plan.arrivals for a in seq),
        dtype=np.int64,
        count=total_contacts,
    )
    edge_of_contact = np.repeat(np.arange(edge_count), edge_len)
    target_arr = np.asarray(plan.target_idx, dtype=np.int64)
    order = np.lexsort(
        (target_arr[edge_of_contact], arr_flat, dep_flat)
    )
    dep_s = dep_flat[order]
    arr_s = arr_flat[order]
    tgt_s = target_arr[edge_of_contact][order]
    src_s = src_of_edge[edge_of_contact][order]
    # Group starts: one merge group per distinct (departure, arrival,
    # target) — precomputed once, sliced per date below.
    if total_contacts:
        change = np.empty(total_contacts, dtype=bool)
        change[0] = True
        change[1:] = (
            (dep_s[1:] != dep_s[:-1])
            | (arr_s[1:] != arr_s[:-1])
            | (tgt_s[1:] != tgt_s[:-1])
        )
        group_starts_all = np.flatnonzero(change)
    else:
        group_starts_all = np.empty(0, dtype=np.int64)

    # The date axis: every departure, every arrival, and the seed date.
    dates = np.unique(
        np.concatenate(
            (dep_s, arr_s, np.asarray([plan.start_time], dtype=np.int64))
        )
    )
    date_lo = np.searchsorted(dep_s, dates, side="left")
    date_hi = np.searchsorted(dep_s, dates, side="right")
    group_lo = np.searchsorted(group_starts_all, date_lo, side="left")
    group_hi = np.searchsorted(group_starts_all, date_hi, side="left")
    return _BitsetLowering(
        dep_s, arr_s, tgt_s, src_s, group_starts_all,
        dates, date_lo, date_hi, group_lo, group_hi,
    )


def _bitset_lowering(plan: "SweepPlan") -> _BitsetLowering:
    key = id(plan)
    hit = _BITSET_LOWERINGS.get(key)
    if hit is not None and hit[0]() is plan:
        return hit[1]
    lowered = _lower_plan_bitset(plan)
    try:
        ref = weakref.ref(plan, lambda _r, _k=key: _BITSET_LOWERINGS.pop(_k, None))
    except TypeError:  # a plan stand-in that refuses weakrefs: skip caching
        return lowered
    _BITSET_LOWERINGS[key] = (ref, lowered)
    return lowered


def sweep_block_bitset(
    plan: "SweepPlan",
    sources: Sequence[int],
    stats: SweepStats | None = None,
) -> np.ndarray:
    """The date-bucketed uint64 contact-scan sweep (see the module
    docstring).

    All contacts are sorted ONCE by (departure, arrival, target); the
    sweep then walks the merged date axis (contact departures, contact
    arrivals, and the seed date) in increasing order.  At each date the
    pending bucket — a full-width ``(n, words)`` uint64 matrix — is
    applied (``new = mask & ~node_mask`` stamps first arrivals), and the
    date's contact slice departs carrying whichever source rows the
    semantics make eligible:

    * unbounded waiting — ``node_mask`` rows (every bit that has ever
      arrived at the tail; earlier arrivals' departure windows subsume
      later ones, so this is exact);
    * no-wait — the current bucket's rows (only bits arriving exactly at
      the departure date may continue);
    * bounded ``wait[w]`` — the OR of the buckets retained for the
      recency window ``[t - w, t]`` (an arrival *event*, re-arrivals of
      known bits included, keeps a bit eligible for ``w`` more dates —
      exactly the bignum sweep's full-mask push discipline).

    Each contact is therefore touched exactly once per sweep, and all
    pushes landing on the same (arrival date, target) merge with one
    ``np.bitwise_or.reduceat`` over pre-sorted group boundaries.
    """
    sources = tuple(sources)
    b = len(sources)
    n = plan.n
    arrival = np.full((b, n), UNREACHED, dtype=np.int64)
    if b == 0 or n == 0:
        return arrival
    words = (b + 63) >> 6
    start = plan.start_time
    horizon = plan.horizon
    max_wait = plan.max_wait
    # A wait bound no processed departure date can exhaust is unbounded
    # waiting in disguise (latest is pinned at the horizon either way).
    wait_like = max_wait is None or start + max_wait + 1 >= horizon

    # The source-independent lowering — flattened, sorted, grouped
    # contacts plus the date axis — cached per plan object.
    (
        _dep_s, arr_s, tgt_s, src_s, group_starts_all,
        dates, date_lo, date_hi, group_lo, group_hi,
    ) = _bitset_lowering(plan)

    #: bit i of node_mask[j] — source i's earliest arrival at j is stamped.
    node_mask = np.zeros((n, words), dtype=np.uint64)

    # Seed: one bucket at the start date carrying every source's own bit
    # (duplicate source nodes simply stack their bits in one row).
    seed = np.zeros((n, words), dtype=np.uint64)
    rows = np.arange(b, dtype=np.uint64)
    np.bitwise_or.at(
        seed,
        (np.asarray(sources, dtype=np.int64), (rows >> np.uint64(6)).astype(np.int64)),
        np.uint64(1) << (rows & np.uint64(63)),
    )
    buckets: dict[int, np.ndarray] = {start: seed}
    #: bounded-wait recency window: the (date, bucket) pairs with
    #: ``date in [t - max_wait, t]``, oldest first.
    retained: deque[tuple[int, np.ndarray]] = deque()

    pops = push_count = 0
    for di, t in enumerate(dates.tolist()):
        bucket = buckets.pop(t, None)
        if bucket is not None:
            pops += 1
            active = np.flatnonzero(bucket.any(axis=1))
            masks = bucket[active]
            known = node_mask[active]
            new = masks & ~known
            if new.any():
                node_mask[active] = known | new
                # Newly-set bits, little-endian throughout, so unpacked
                # column s is exactly source row s of the block.
                bits = np.unpackbits(
                    new.astype("<u8", copy=False).view(np.uint8),
                    axis=1,
                    bitorder="little",
                )
                hit_rows, hit_sources = np.nonzero(bits[:, :b])
                arrival[hit_sources, active[hit_rows]] = t
        if t >= horizon:
            continue
        lo = int(date_lo[di])
        hi = int(date_hi[di])
        if not wait_like and max_wait > 0:
            if bucket is not None:
                retained.append((t, bucket))
            while retained and retained[0][0] < t - max_wait:
                retained.popleft()
        if lo == hi:
            continue

        # Which source rows may depart on this date's contacts.
        srcs = src_s[lo:hi]
        if wait_like:
            eligible = node_mask[srcs]
        elif max_wait == 0:
            if bucket is None:
                continue
            eligible = bucket[srcs]
        else:
            if not retained:
                continue
            it = iter(retained)
            eligible = next(it)[1][srcs].copy()
            for _d, held in it:
                eligible |= held[srcs]
        push_count += hi - lo

        # Merge pushes sharing an (arrival date, target) with ONE
        # or-reduce over the pre-sorted groups, drop the empty ones, and
        # scatter each arrival date's rows into its bucket.
        gs = group_starts_all[group_lo[di] : group_hi[di]]
        merged = np.bitwise_or.reduceat(eligible, gs - lo, axis=0)
        keep = np.flatnonzero(merged.any(axis=1))
        if keep.size == 0:
            continue
        merged = merged[keep]
        group_arr = arr_s[gs[keep]]
        group_tgt = tgt_s[gs[keep]]
        date_bounds = np.append(
            np.flatnonzero(np.r_[True, group_arr[1:] != group_arr[:-1]]),
            len(group_arr),
        )
        for a, z in zip(date_bounds[:-1], date_bounds[1:]):
            date = int(group_arr[a])
            bucket_d = buckets.get(date)
            if bucket_d is None:
                bucket_d = np.zeros((n, words), dtype=np.uint64)
                buckets[date] = bucket_d
            bucket_d[group_tgt[a:z]] |= merged[a:z]

    if stats is not None:
        # The sorted date axis visits each date exactly once, so the
        # bitset kernel has no dead pops by construction — recorded so
        # the invariant is observable (and pinned by the unit tests).
        stats.pops, stats.dead_pops, stats.pushes = pops, 0, push_count
    return arrival


# -- the bignum oracle ---------------------------------------------------------


def sweep_block_bignum(
    plan: "SweepPlan",
    sources: Sequence[int],
    stats: SweepStats | None = None,
) -> np.ndarray:
    """The per-state Python-int sweep — the ground-truth oracle.

    Masks are block positions, so a block of ``b`` sources pays for
    ``b``-bit merges however large the full graph is.  Each pending
    ``(node, date)`` key gets exactly one heap entry (created with the
    key, merged silently after), including duplicate seed sources — the
    dead-pop churn the date-bucketed kernel designs away.
    """
    sources = tuple(sources)
    arrival = np.full((len(sources), plan.n), UNREACHED, dtype=np.int64)
    node_mask = [0] * plan.n
    pending: dict[tuple[int, int], int] = {}
    heap: list[tuple[int, int]] = []
    start = plan.start_time
    for row, node_idx in enumerate(sources):
        key = (node_idx, start)
        if key not in pending:
            heapq.heappush(heap, (start, node_idx))
            pending[key] = 0
        pending[key] |= 1 << row
    horizon = plan.horizon
    max_wait = plan.max_wait
    out_edges = plan.out_edges
    target_idx = plan.target_idx
    contacts = plan.contacts
    arrivals = plan.arrivals
    pops = dead_pops = push_count = 0
    while heap:
        time, node_idx = heapq.heappop(heap)
        mask = pending.pop((node_idx, time), 0)
        if not mask:
            dead_pops += 1
            continue
        pops += 1
        new = mask & ~node_mask[node_idx]
        if new:
            node_mask[node_idx] |= new
            while new:
                low = new & -new
                arrival[low.bit_length() - 1, node_idx] = time
                new ^= low
        if time >= horizon:
            continue
        latest = horizon if max_wait is None else min(horizon, time + max_wait + 1)
        for ei in out_edges[node_idx]:
            dates = contacts[ei]
            lo = bisect_left(dates, time)
            hi = bisect_left(dates, latest, lo)
            if lo == hi:
                continue
            arrs = arrivals[ei]
            target = target_idx[ei]
            for k in range(lo, hi):
                push_count += 1
                key = (target, arrs[k])
                existing = pending.get(key)
                if existing is None:
                    pending[key] = mask
                    heapq.heappush(heap, (arrs[k], target))
                elif existing | mask != existing:
                    pending[key] = existing | mask
    if stats is not None:
        stats.pops, stats.dead_pops, stats.pushes = pops, dead_pops, push_count
    return arrival
