"""The time-varying graph container.

``G = (V, E, T, rho, zeta)``: nodes, labeled edges, a lifetime, and the
presence/latency functions (stored per edge).  The container is a plain
adjacency structure; journey search lives in
:mod:`repro.core.traversal`, snapshots in :mod:`repro.core.snapshots`,
and structural transforms in :mod:`repro.core.transforms`.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, NamedTuple

from repro.core.edges import Edge
from repro.core.latency import LatencyFunction, constant_latency
from repro.core.presence import PresenceFunction, always
from repro.core.time_domain import Lifetime
from repro.errors import ReproError, TimeDomainError

#: How many mutation deltas a graph retains.  A consumer whose snapshot
#: predates the retained history gets ``None`` from
#: :meth:`TimeVaryingGraph.deltas_since` and must recompute from
#: scratch, so the cap bounds memory without ever risking a stale
#: incremental answer.
DELTA_HISTORY: int = 4096


class MutationDelta(NamedTuple):
    """One recorded mutation: the version it produced and what changed.

    ``kind`` is ``"add_node"``, ``"add_edge"``, ``"remove_edge"``, or
    ``"set_presence"``.  ``edge_key`` is None for node additions;
    ``source``/``target`` are the touched edge's endpoints (both the
    node itself for ``"add_node"``), recorded at mutation time so a
    removed edge's endpoints survive its removal — the incremental
    sweep needs the *tail* of every dirty edge to bound its re-sweep
    cone.
    """

    version: int
    kind: str
    edge_key: str | None
    source: Hashable
    target: Hashable


class TimeVaryingGraph:
    """A directed time-varying multigraph with labeled edges.

    Attributes:
        lifetime: The time span over which the graph is studied.
        period: Optional declared period.  When set, every presence
            function is promised to satisfy ``rho(t) = rho(t + period)``
            and every latency ``zeta(t) = zeta(t + period)``; the
            wait-language extractor relies on this promise.
        name: Optional human-readable name used in reports.
    """

    def __init__(
        self,
        lifetime: Lifetime | None = None,
        period: int | None = None,
        name: str = "",
    ) -> None:
        if period is not None and period <= 0:
            raise TimeDomainError(f"period must be positive, got {period}")
        self.lifetime = lifetime if lifetime is not None else Lifetime()
        self.period = period
        self.name = name
        self._nodes: dict[Hashable, None] = {}
        self._edges: dict[str, Edge] = {}
        # Adjacency is keyed by edge key so removal is O(1) per endpoint
        # (dicts preserve insertion order, keeping edge iteration stable).
        self._out: dict[Hashable, dict[str, Edge]] = {}
        self._in: dict[Hashable, dict[str, Edge]] = {}
        self._key_counter = 0
        self._version = 0
        # One delta per version bump, consecutive by construction, so
        # deltas_since can tell a complete chain from a truncated one by
        # looking at the oldest retained entry alone.
        self._deltas: deque[MutationDelta] = deque(maxlen=DELTA_HISTORY)

    @property
    def version(self) -> int:
        """Monotone mutation counter.

        Bumped on every structural change (node or edge added/removed),
        so derived structures — notably the compiled contact-sequence
        index of :mod:`repro.core.index` — can detect staleness cheaply
        instead of re-validating the whole graph.
        """
        return self._version

    def _record(
        self, kind: str, edge_key: str | None, source: Hashable, target: Hashable
    ) -> None:
        """Bump the version and log the matching delta (always paired,
        so recorded versions stay consecutive)."""
        self._version += 1
        self._deltas.append(
            MutationDelta(self._version, kind, edge_key, source, target)
        )

    def deltas_since(self, version: int) -> tuple[MutationDelta, ...] | None:
        """Every mutation after the given version snapshot, oldest first.

        Returns ``()`` when the graph has not mutated since, and None
        when the chain is unknowable — the snapshot is from the future,
        or old enough that the bounded history no longer reaches back to
        it.  A None means "recompute from scratch"; a non-None chain is
        guaranteed complete, so derived structures (the compiled index,
        the service's cached matrices) can be patched instead of
        rebuilt.
        """
        if version > self._version:
            return None
        if version == self._version:
            return ()
        if not self._deltas or self._deltas[0].version > version + 1:
            return None
        return tuple(d for d in self._deltas if d.version > version)

    # -- nodes --------------------------------------------------------------------

    def add_node(self, node: Hashable) -> Hashable:
        """Add a node (idempotent); returns the node."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._out[node] = {}
            self._in[node] = {}
            self._record("add_node", None, node, node)
        return node

    def add_nodes(self, nodes: Iterable[Hashable]) -> None:
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        """All nodes, in insertion order."""
        return tuple(self._nodes)

    def has_node(self, node: Hashable) -> bool:
        return node in self._nodes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    # -- edges --------------------------------------------------------------------

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        label: str | None = None,
        presence: PresenceFunction | None = None,
        latency: LatencyFunction | None = None,
        key: str | None = None,
    ) -> Edge:
        """Add a directed edge; endpoints are created as needed.

        ``presence`` defaults to always-present and ``latency`` to the
        unit latency, so a plain static graph needs no schedule at all.
        ``key`` must be unique; omitted keys are auto-generated.
        """
        self.add_node(source)
        self.add_node(target)
        if key is None:
            key = f"e{self._key_counter}"
            self._key_counter += 1
        if key in self._edges:
            raise ReproError(f"duplicate edge key {key!r}")
        edge = Edge(
            source=source,
            target=target,
            label=label,
            key=key,
            presence=presence if presence is not None else always(),
            latency=latency if latency is not None else constant_latency(1),
        )
        self._insert(edge)
        return edge

    def add_edge_object(self, edge: Edge) -> Edge:
        """Add a pre-built :class:`Edge` (used by transforms)."""
        self.add_node(edge.source)
        self.add_node(edge.target)
        if not edge.key:
            raise ReproError("edge objects added directly must carry a key")
        if edge.key in self._edges:
            raise ReproError(f"duplicate edge key {edge.key!r}")
        self._insert(edge)
        return edge

    def add_contact(
        self,
        u: Hashable,
        v: Hashable,
        presence: PresenceFunction | None = None,
        latency: LatencyFunction | None = None,
        label: str | None = None,
        key: str | None = None,
    ) -> tuple[Edge, Edge]:
        """Add an undirected contact as a symmetric pair of edges.

        Contact networks (the DTN setting of the paper's introduction)
        are undirected; both directions share the same schedule.
        """
        forward = self.add_edge(u, v, label=label, presence=presence, latency=latency, key=key)
        backward = self.add_edge_object(forward.reversed())
        return forward, backward

    def _insert(self, edge: Edge) -> None:
        self._edges[edge.key] = edge
        self._out[edge.source][edge.key] = edge
        self._in[edge.target][edge.key] = edge
        self._record("add_edge", edge.key, edge.source, edge.target)

    def remove_edge(self, key: str) -> Edge:
        """Remove and return the edge with the given key."""
        try:
            edge = self._edges.pop(key)
        except KeyError:
            raise ReproError(f"no edge with key {key!r}") from None
        del self._out[edge.source][key]
        del self._in[edge.target][key]
        self._record("remove_edge", key, edge.source, edge.target)
        return edge

    def set_presence(self, key: str, presence: PresenceFunction) -> Edge:
        """Swap the schedule of an existing edge; returns the new edge.

        Endpoints, label, key, and latency are preserved, and the swap
        bumps :attr:`version` exactly once (a remove + re-add would bump
        twice), so derived caches are invalidated without scanning.
        """
        old = self.edge(key)
        edge = old.with_presence(presence)
        self._edges[key] = edge
        self._out[edge.source][key] = edge
        self._in[edge.target][key] = edge
        self._record("set_presence", key, edge.source, edge.target)
        return edge

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges, in insertion order."""
        return tuple(self._edges.values())

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def edge(self, key: str) -> Edge:
        """The edge with the given key."""
        try:
            return self._edges[key]
        except KeyError:
            raise ReproError(f"no edge with key {key!r}") from None

    def has_edge(self, key: str) -> bool:
        return key in self._edges

    def out_edges(self, node: Hashable) -> tuple[Edge, ...]:
        """Edges leaving ``node``."""
        self._require_node(node)
        return tuple(self._out[node].values())

    def in_edges(self, node: Hashable) -> tuple[Edge, ...]:
        """Edges entering ``node``."""
        self._require_node(node)
        return tuple(self._in[node].values())

    def edges_between(self, source: Hashable, target: Hashable) -> tuple[Edge, ...]:
        """All parallel edges from ``source`` to ``target``."""
        self._require_node(source)
        self._require_node(target)
        return tuple(e for e in self._out[source].values() if e.target == target)

    def _require_node(self, node: Hashable) -> None:
        if node not in self._nodes:
            raise ReproError(f"unknown node {node!r}")

    # -- time-indexed queries -------------------------------------------------------

    def edges_at(self, time: int) -> Iterator[Edge]:
        """All edges present at the given date."""
        self.lifetime.require(time)
        for edge in self._edges.values():
            if edge.present_at(time):
                yield edge

    def out_edges_at(self, node: Hashable, time: int) -> Iterator[Edge]:
        """Edges leaving ``node`` that are present at ``time``."""
        self._require_node(node)
        for edge in self._out[node].values():
            if edge.present_at(time):
                yield edge

    def degree_at(self, node: Hashable, time: int) -> int:
        """Number of present out-edges at ``time``."""
        return sum(1 for _ in self.out_edges_at(node, time))

    # -- alphabet ---------------------------------------------------------------------

    @property
    def alphabet(self) -> frozenset[str]:
        """All edge labels in use (the ``Sigma`` of the TVG-automaton view)."""
        return frozenset(
            e.label for e in self._edges.values() if e.label is not None
        )

    # -- copies --------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "TimeVaryingGraph":
        """A structural copy sharing the (immutable) edge objects."""
        clone = TimeVaryingGraph(
            lifetime=self.lifetime,
            period=self.period,
            name=self.name if name is None else name,
        )
        clone.add_nodes(self._nodes)
        for edge in self._edges.values():
            clone.add_edge_object(edge)
        clone._key_counter = self._key_counter
        return clone

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        period = f", period={self.period}" if self.period else ""
        return (
            f"TimeVaryingGraph({label.strip()} |V|={self.node_count}, "
            f"|E|={self.edge_count}, lifetime=[{self.lifetime.start}, "
            f"{self.lifetime.end}){period})"
        )
