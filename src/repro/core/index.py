"""The compiled contact-sequence index (``CompiledTVG``).

Interpretive journey search asks a Python :class:`PresenceFunction` one
date at a time — a per-edge, per-date function call on the hottest path
of the whole system.  :class:`CompiledTVG` lowers every *structured*
presence into a sorted numpy array of contact dates over a bounded
window, plus CSR-style per-node adjacency, so the two queries journey
search needs become array operations:

* *next presence at or after t* — one ``searchsorted`` (binary search);
* *all departures in [a, b)* — one slice of the sorted contact array.

Lowering rules
--------------

A presence is *structured* — exactly lowerable, no per-date calls — when
it is built from ``always``/``never``, :class:`IntervalPresence`,
:class:`PeriodicPresence`, and their ``shifted``/``dilated``/
``union``/``intersect`` combinators.  For those, ``presence.support``
already answers scan-free, so lowering an edge is one ``support`` call
over the window materialized into ``np.int64`` dates.

Black-box fallback
------------------

:class:`FunctionPresence` (and any unknown subclass) admits no exact
lowering — the paper's Table 1 schedules are arbitrary computable
predicates.  Those edges are *not* compiled: the index records them as
opaque and the engine answers their queries through the original
callable with bounded scans, byte-for-byte the interpretive semantics.
A compiled and an interpretive run therefore always agree; compilation
only accelerates the edges it can prove out.

Lazy black-box lowering
-----------------------

A black-box predicate is arbitrary but *deterministic*, so its answers
can be memoized.  :class:`LazyContactCache` lowers black-box edges
lazily: the first query over a window scans the predicate once and
stores the resulting contact dates as a sorted array; later queries are
answered from the array, and wider queries extend the scanned window by
calling the predicate only on the *new* dates.  The cache outlives index
rebuilds (the :class:`~repro.core.engine.TemporalEngine` owns one and
threads it through every :class:`CompiledTVG` it compiles), so across
repeated analysis queries each predicate is invoked at most once per
(edge, date).  Graph mutation flushes the cache through the same version
counter that invalidates the index.

Invalidation
------------

The index snapshots :attr:`TimeVaryingGraph.version` at build time.
Any structural mutation bumps the counter, and
:class:`~repro.core.engine.TemporalEngine` transparently rebuilds a
stale index before answering.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.edges import Edge
from repro.core.intervals import Interval
from repro.core.latency import ConstantLatency
from repro.core.presence import (
    IntervalPresence,
    PeriodicPresence,
    PresenceFunction,
    _AlwaysPresence,
    _CombinedPresence,
    _DilatedPresence,
    _NeverPresence,
    _ShiftedPresence,
)
from repro.core.tvg import TimeVaryingGraph

_STRUCTURED_LEAVES = (
    _AlwaysPresence,
    _NeverPresence,
    IntervalPresence,
    PeriodicPresence,
)


def is_structured(presence: PresenceFunction) -> bool:
    """Whether ``presence`` lowers exactly (no per-date callable scans)."""
    if isinstance(presence, _STRUCTURED_LEAVES):
        return True
    if isinstance(presence, (_ShiftedPresence, _DilatedPresence)):
        return is_structured(presence.inner)
    if isinstance(presence, _CombinedPresence):
        return is_structured(presence.left) and is_structured(presence.right)
    return False


class LazyContactCache:
    """Memoized contact arrays for black-box presences of one graph.

    Per edge (keyed by edge key) the cache holds a sorted list of
    disjoint scanned *segments* ``(lo, hi, contacts)`` — the sorted
    ``np.int64`` contact dates found in ``[lo, hi)``.  A query inside
    scanned territory is pure array work; a query reaching outside
    scans only the uncovered gaps it actually touches and merges the
    result with any overlapping or adjacent segments.  Queries far from
    earlier ones therefore start a new segment instead of scanning the
    no-man's-land in between, and across the cache's lifetime each
    predicate is invoked **at most once per (edge, date)** — the lazy
    counterpart of the eager lowering :class:`CompiledTVG` applies to
    structured presences.

    The cache snapshots :attr:`TimeVaryingGraph.version`; when the graph
    mutates it drops exactly the edges whose schedule actually changed —
    the edge is gone, or its presence object is a different one than the
    segments were scanned against — and retains every other edge's
    segments.  Contacts are a pure function of the presence object, so
    an unrelated ``add_edge`` can no longer re-fire every black-box
    predicate on every other edge.
    """

    __slots__ = ("graph", "version", "_segments", "_presences")

    def __init__(self, graph: TimeVaryingGraph) -> None:
        self.graph = graph
        self.version = graph.version
        #: edge key -> sorted disjoint (lo, hi, contact dates) segments.
        self._segments: dict[str, list[tuple[int, int, np.ndarray]]] = {}
        #: edge key -> the presence object the segments were scanned
        #: against (identity is the retention test across mutations).
        self._presences: dict[str, PresenceFunction] = {}

    def _sync(self) -> None:
        """Catch up with graph mutations, keeping untouched edges.

        A cached edge survives iff it still exists and its presence is
        the *same object* the segments were scanned from; a remove +
        re-add under the same key with a new schedule, or a
        ``set_presence``, fails the identity check and drops exactly
        that edge's segments.
        """
        if self.graph.version == self.version:
            return
        for key in list(self._segments):
            if (
                not self.graph.has_edge(key)
                or self.graph.edge(key).presence is not self._presences.get(key)
            ):
                del self._segments[key]
                self._presences.pop(key, None)
        self.version = self.graph.version

    def __len__(self) -> int:
        """Number of edges with at least one scanned segment."""
        return len(self._segments)

    def scanned_window(self, edge: Edge) -> tuple[int, int] | None:
        """The hull ``(lo, hi)`` of the segments scanned for ``edge``.

        Dates inside the hull but between disjoint segments have *not*
        been scanned; None when the edge was never queried.
        """
        self._sync()
        segments = self._segments.get(edge.key)
        if not segments:
            return None
        return segments[0][0], segments[-1][1]

    def contacts(self, edge: Edge, start: int, end: int) -> np.ndarray:
        """Sorted contact dates of ``edge`` in ``[start, end)``.

        The predicate is called only on dates of ``[start, end)`` never
        scanned before.
        """
        self._sync()
        if self._presences.get(edge.key) is not edge.presence:
            # Segments (if any) were scanned from a different schedule
            # than the caller's edge object carries — never mix them.
            self._segments.pop(edge.key, None)
            self._presences[edge.key] = edge.presence
        if end <= start:
            return _EMPTY_CONTACTS
        segments = self._segments.get(edge.key, [])
        before: list[tuple[int, int, np.ndarray]] = []
        absorbed: list[tuple[int, int, np.ndarray]] = []
        after: list[tuple[int, int, np.ndarray]] = []
        for segment in segments:
            lo, hi, _dates = segment
            if hi < start:
                before.append(segment)
            elif lo > end:
                after.append(segment)
            else:  # overlapping or adjacent: merge into the query's span
                absorbed.append(segment)
        merged_lo = min([start] + [lo for lo, _hi, _d in absorbed])
        merged_hi = max([end] + [hi for _lo, hi, _d in absorbed])
        pieces: list[np.ndarray] = []
        cursor = merged_lo
        for lo, hi, dates in absorbed:
            if cursor < lo:
                pieces.append(self._scan(edge, cursor, lo))
            pieces.append(dates)
            cursor = hi
        if cursor < merged_hi:
            pieces.append(self._scan(edge, cursor, merged_hi))
        merged = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        self._segments[edge.key] = before + [(merged_lo, merged_hi, merged)] + after
        left = int(np.searchsorted(merged, start, side="left"))
        right = int(np.searchsorted(merged, end, side="left"))
        return merged[left:right]

    @staticmethod
    def _scan(edge: Edge, start: int, end: int) -> np.ndarray:
        return np.fromiter(
            (t for t in range(start, end) if edge.present_at(t)), dtype=np.int64
        )

    def __repr__(self) -> str:
        segments = sum(len(s) for s in self._segments.values())
        return (
            f"LazyContactCache({len(self)} edges scanned in {segments} "
            f"segments, version={self.version})"
        )


_EMPTY_CONTACTS = np.empty(0, dtype=np.int64)


class CompiledTVG:
    """A contact-sequence index of one graph over one time window.

    For each edge ``i`` with a structured presence, ``contacts[i]`` is
    the sorted ``np.int64`` array of its present dates within
    ``[window.start, window.end)``; for black-box edges it is ``None``.
    ``out_ptr``/``out_edge_idx`` form the CSR adjacency: the out-edge
    indices of node ``j`` (in insertion order, matching
    :meth:`TimeVaryingGraph.out_edges`) are
    ``out_edge_idx[out_ptr[j]:out_ptr[j + 1]]``.

    ``cache`` optionally supplies a :class:`LazyContactCache`; with one,
    black-box queries are memoized through it instead of re-calling the
    predicate on every scan.
    """

    __slots__ = (
        "graph",
        "version",
        "window",
        "nodes",
        "node_index",
        "edge_list",
        "contacts",
        "cache",
        "const_latency",
        "out_ptr",
        "out_edge_idx",
        "target_idx",
        "_out_lists",
        "_edge_pos",
    )

    def __init__(
        self,
        graph: TimeVaryingGraph,
        window: Interval,
        cache: LazyContactCache | None = None,
    ) -> None:
        if window.empty:
            window = Interval(window.start, window.start)
        self.graph = graph
        self.version = graph.version
        self.window = window
        self.cache = cache
        self.nodes: tuple[Hashable, ...] = graph.nodes
        self.node_index: dict[Hashable, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        self.edge_list: tuple[Edge, ...] = graph.edges
        edge_pos = {edge.key: i for i, edge in enumerate(self.edge_list)}
        self._edge_pos: dict[str, int] = edge_pos

        self.contacts: list[np.ndarray | None] = []
        #: Latency value when the edge's zeta is constant, else -1 (call it).
        self.const_latency = np.empty(len(self.edge_list), dtype=np.int64)
        for i, edge in enumerate(self.edge_list):
            self.contacts.append(self._lower(edge.presence, window))
            latency = edge.latency
            self.const_latency[i] = (
                latency.value if isinstance(latency, ConstantLatency) else -1
            )

        # CSR adjacency over edge indices, grouped by source node.
        counts = np.zeros(len(self.nodes) + 1, dtype=np.int64)
        per_node: list[list[int]] = [[] for _ in self.nodes]
        for node in self.nodes:
            j = self.node_index[node]
            for edge in graph.out_edges(node):
                per_node[j].append(edge_pos[edge.key])
            counts[j + 1] = len(per_node[j])
        self.out_ptr = np.cumsum(counts)
        self.out_edge_idx = np.fromiter(
            (ei for row in per_node for ei in row),
            dtype=np.int64,
            count=int(self.out_ptr[-1]),
        )
        # Hot-loop view of the CSR rows: plain tuples iterate faster than
        # numpy slices, so snapshot each row once (derived, never diverges).
        self._out_lists: tuple[tuple[int, ...], ...] = tuple(
            tuple(self.out_edge_idx[self.out_ptr[j] : self.out_ptr[j + 1]].tolist())
            for j in range(len(self.nodes))
        )
        #: Head-node index of each edge (for index-space sweeps).
        self.target_idx: tuple[int, ...] = tuple(
            self.node_index[edge.target] for edge in self.edge_list
        )

    @staticmethod
    def _lower(presence: PresenceFunction, window: Interval) -> np.ndarray | None:
        if not is_structured(presence):
            return None
        support = presence.support(window)
        return np.fromiter(
            support.times(), dtype=np.int64, count=support.total_length()
        )

    # -- staleness ------------------------------------------------------------

    @property
    def stale(self) -> bool:
        """Whether the graph mutated after this index was built."""
        return self.graph.version != self.version

    def covers(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` lies inside the compiled window."""
        return start >= self.window.start and end <= self.window.end

    def apply_deltas(self, deltas) -> bool:
        """Patch the index in place from a complete mutation-delta chain.

        Presence swaps are the only mutation that leaves every compiled
        shape intact — same nodes, same edge set, same adjacency, same
        latencies — so a chain of pure ``"set_presence"`` deltas patches
        as: relower each touched edge's contact array over the existing
        window and refresh its :attr:`edge_list` entry.  Any other delta
        kind (or an unknowable chain, ``deltas is None``) returns False
        and the caller rebuilds from scratch.  Returns True with
        :attr:`version` caught up on success.
        """
        if deltas is None:
            return False
        touched: dict[str, None] = {}
        for delta in deltas:
            if delta.kind != "set_presence" or delta.edge_key is None:
                return False
            touched[delta.edge_key] = None
        edges = list(self.edge_list)
        for key in touched:
            pos = self._edge_pos.get(key)
            if pos is None:
                return False
            edge = self.graph.edge(key)
            edges[pos] = edge
            self.contacts[pos] = self._lower(edge.presence, self.window)
        self.edge_list = tuple(edges)
        self.version = self.graph.version
        return True

    # -- the two kernel queries ------------------------------------------------

    def out_edge_indices(self, node_idx: int) -> Sequence[int]:
        """Out-edge indices of a node, in insertion order."""
        return self._out_lists[node_idx]

    def next_present(self, edge_idx: int, time: int, limit: int) -> int | None:
        """Earliest contact of edge ``edge_idx`` in ``[time, limit)``."""
        contacts = self.contacts[edge_idx]
        if contacts is None:
            edge = self.edge_list[edge_idx]
            if self.cache is None:
                return edge.presence.next_present(time, limit)
            found = self.cache.contacts(edge, time, limit)
            return int(found[0]) if len(found) else None
        pos = int(np.searchsorted(contacts, time, side="left"))
        if pos < len(contacts) and contacts[pos] < limit:
            return int(contacts[pos])
        return None

    def departures(self, edge_idx: int, start: int, end: int) -> list[int]:
        """All contacts of edge ``edge_idx`` in ``[start, end)``, sorted."""
        if end <= start:
            return []
        contacts = self.contacts[edge_idx]
        if contacts is None:
            edge = self.edge_list[edge_idx]
            if self.cache is None:
                support = edge.presence.support(Interval(start, end))
                return list(support.times())
            return self.cache.contacts(edge, start, end).tolist()
        lo = int(np.searchsorted(contacts, start, side="left"))
        hi = int(np.searchsorted(contacts, end, side="left"))
        return contacts[lo:hi].tolist()

    def present_at(self, edge_idx: int, time: int) -> bool:
        """Membership test on the compiled contact sequence."""
        contacts = self.contacts[edge_idx]
        if contacts is None:
            edge = self.edge_list[edge_idx]
            if self.cache is None:
                return edge.present_at(time)
            return bool(len(self.cache.contacts(edge, time, time + 1)))
        pos = int(np.searchsorted(contacts, time, side="left"))
        return pos < len(contacts) and int(contacts[pos]) == time

    def arrival(self, edge_idx: int, departure: int) -> int:
        """Arrival date of a traversal of ``edge_idx`` started at ``departure``."""
        value = int(self.const_latency[edge_idx])
        if value >= 0:
            return departure + value
        return departure + self.edge_list[edge_idx].latency(departure)

    # -- stats ----------------------------------------------------------------

    @property
    def compiled_edge_count(self) -> int:
        """How many edges lowered exactly (the rest use the fallback)."""
        return sum(1 for c in self.contacts if c is not None)

    def __repr__(self) -> str:
        return (
            f"CompiledTVG(|V|={len(self.nodes)}, |E|={len(self.edge_list)}, "
            f"compiled={self.compiled_edge_count}, window=[{self.window.start}, "
            f"{self.window.end}), version={self.version})"
        )
