"""Random and structured TVG generators.

All generators take an explicit ``rng`` (a :class:`random.Random`) or
``seed``; nothing reads global randomness.  Generators that produce
periodic schedules declare the period on the graph so the wait-language
extractor accepts them.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.core.builders import coerce_latency
from repro.core.presence import at_times, periodic_presence
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError


def _resolve_rng(rng: random.Random | None, seed: int | None) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed if seed is not None else 0)


def bernoulli_tvg(
    n: int,
    horizon: int,
    density: float,
    directed: bool = False,
    latency: int = 1,
    rng: random.Random | None = None,
    seed: int | None = None,
    name: str = "bernoulli",
) -> TimeVaryingGraph:
    """Each (edge-slot, date) present independently with probability ``density``.

    The memoryless baseline dynamic network: over a complete footprint on
    ``n`` nodes, every potential edge flips its own coin at every date.
    With ``directed=False`` contacts are symmetric.
    """
    if not 0.0 <= density <= 1.0:
        raise ReproError(f"density must be in [0, 1], got {density}")
    rng = _resolve_rng(rng, seed)
    graph = TimeVaryingGraph(lifetime=Lifetime(0, horizon), name=name)
    graph.add_nodes(range(n))
    pairs = (
        [(u, v) for u in range(n) for v in range(n) if u != v]
        if directed
        else [(u, v) for u in range(n) for v in range(u + 1, n)]
    )
    for u, v in pairs:
        times = [t for t in range(horizon) if rng.random() < density]
        if not times:
            continue
        presence = at_times(times)
        if directed:
            graph.add_edge(u, v, presence=presence, latency=coerce_latency(latency))
        else:
            graph.add_contact(u, v, presence=presence, latency=coerce_latency(latency))
    return graph


def edge_markovian_tvg(
    n: int,
    horizon: int,
    birth: float,
    death: float,
    directed: bool = False,
    latency: int = 1,
    rng: random.Random | None = None,
    seed: int | None = None,
    name: str = "edge-markovian",
) -> TimeVaryingGraph:
    """The edge-Markovian evolving graph.

    Each potential edge runs an independent two-state Markov chain: an
    absent edge appears next step with probability ``birth``, a present
    edge disappears with probability ``death``.  The stationary presence
    density is ``birth / (birth + death)``.  This is the standard model
    for intermittently-connected mobile networks and drives the
    store-carry-forward benchmark (E6).
    """
    for nameval, value in (("birth", birth), ("death", death)):
        if not 0.0 <= value <= 1.0:
            raise ReproError(f"{nameval} must be in [0, 1], got {value}")
    rng = _resolve_rng(rng, seed)
    graph = TimeVaryingGraph(lifetime=Lifetime(0, horizon), name=name)
    graph.add_nodes(range(n))
    stationary = birth / (birth + death) if birth + death > 0 else 0.0
    pairs = (
        [(u, v) for u in range(n) for v in range(n) if u != v]
        if directed
        else [(u, v) for u in range(n) for v in range(u + 1, n)]
    )
    for u, v in pairs:
        present = rng.random() < stationary
        times = []
        for t in range(horizon):
            if present:
                times.append(t)
                present = rng.random() >= death
            else:
                present = rng.random() < birth
        if not times:
            continue
        presence = at_times(times)
        if directed:
            graph.add_edge(u, v, presence=presence, latency=coerce_latency(latency))
        else:
            graph.add_contact(u, v, presence=presence, latency=coerce_latency(latency))
    return graph


def periodic_random_tvg(
    n: int,
    period: int,
    density: float,
    directed: bool = True,
    latency: int = 1,
    labels: Sequence[str] | None = None,
    rng: random.Random | None = None,
    seed: int | None = None,
    name: str = "periodic-random",
) -> TimeVaryingGraph:
    """A random periodic TVG (each edge present at a random residue set).

    Periodicity is declared on the graph, so the result is directly
    eligible for exact wait-language extraction — this generator feeds
    the Theorem 2.2 regularity benchmark (E4).  When ``labels`` is given,
    each edge gets a uniformly random symbol.
    """
    if not 0.0 <= density <= 1.0:
        raise ReproError(f"density must be in [0, 1], got {density}")
    rng = _resolve_rng(rng, seed)
    graph = TimeVaryingGraph(period=period, name=name)
    graph.add_nodes(range(n))
    pairs = (
        [(u, v) for u in range(n) for v in range(n) if u != v]
        if directed
        else [(u, v) for u in range(n) for v in range(u + 1, n)]
    )
    for u, v in pairs:
        residues = [r for r in range(period) if rng.random() < density]
        if not residues:
            continue
        presence = periodic_presence(residues, period)
        label = rng.choice(list(labels)) if labels else None
        if directed:
            graph.add_edge(
                u, v, label=label, presence=presence, latency=coerce_latency(latency)
            )
        else:
            graph.add_contact(
                u, v, label=label, presence=presence, latency=coerce_latency(latency)
            )
    return graph


def random_labeled_tvg(
    n: int,
    edge_count: int,
    alphabet: Sequence[str],
    period: int,
    density: float = 0.5,
    rng: random.Random | None = None,
    seed: int | None = None,
    name: str = "random-labeled",
) -> TimeVaryingGraph:
    """A sparse random labeled periodic TVG for automata experiments.

    Exactly ``edge_count`` directed labeled edges between uniformly drawn
    distinct endpoints, each with a random non-empty periodic schedule.
    """
    rng = _resolve_rng(rng, seed)
    if n < 2:
        raise ReproError("need at least two nodes")
    graph = TimeVaryingGraph(period=period, name=name)
    graph.add_nodes(range(n))
    for index in range(edge_count):
        u = rng.randrange(n)
        v = rng.randrange(n - 1)
        if v >= u:
            v += 1
        residues = [r for r in range(period) if rng.random() < density]
        if not residues:
            residues = [rng.randrange(period)]
        graph.add_edge(
            u,
            v,
            label=rng.choice(list(alphabet)),
            presence=periodic_presence(residues, period),
            key=f"r{index}",
        )
    return graph


def transit_tvg(
    lines: Iterable[tuple[Sequence[Hashable], int, int]],
    latency: int = 1,
    name: str = "transit",
) -> TimeVaryingGraph:
    """A periodic public-transit-style TVG.

    Each line is ``(stops, offset, period)``: a vehicle leaves ``stops[0]``
    at every ``t = offset (mod period)`` and advances one stop per
    ``latency`` time units; the hop from ``stops[i]`` to ``stops[i+1]`` is
    therefore present at ``t = offset + i * latency (mod period)``.

    This models the "connectivity over time without connectivity at any
    time" scenario with completely deterministic schedules, and — being
    periodic — supports exact wait-language extraction.
    """
    lines = list(lines)
    if not lines:
        raise ReproError("at least one line is required")
    overall = 1
    for _stops, _offset, period in lines:
        if period <= 0:
            raise ReproError(f"line period must be positive, got {period}")
        overall = _lcm(overall, period)
    graph = TimeVaryingGraph(period=overall, name=name)
    for line_index, (stops, offset, period) in enumerate(lines):
        stops = list(stops)
        if len(stops) < 2:
            raise ReproError("a line needs at least two stops")
        for i in range(len(stops) - 1):
            residue = (offset + i * latency) % period
            residues = [
                (residue + k * period) % overall for k in range(overall // period)
            ]
            graph.add_edge(
                stops[i],
                stops[i + 1],
                presence=periodic_presence(residues, overall),
                latency=coerce_latency(latency),
                key=f"line{line_index}.hop{i}",
            )
    return graph


def from_networkx_schedule(
    footprint: nx.Graph | nx.DiGraph,
    schedule: dict,
    horizon: int,
    latency: int = 1,
    name: str = "from-networkx",
) -> TimeVaryingGraph:
    """Lift a networkx footprint plus a ``(u, v) -> times`` schedule to a TVG.

    Undirected footprints become symmetric contacts.  Edges missing from
    the schedule are always present.
    """
    graph = TimeVaryingGraph(lifetime=Lifetime(0, horizon), name=name)
    graph.add_nodes(footprint.nodes)
    directed = footprint.is_directed()
    for u, v in footprint.edges:
        times = schedule.get((u, v))
        presence = None if times is None else at_times(times)
        if directed:
            graph.add_edge(u, v, presence=presence, latency=coerce_latency(latency))
        else:
            graph.add_contact(u, v, presence=presence, latency=coerce_latency(latency))
    return graph


def _lcm(a: int, b: int) -> int:
    import math

    return a * b // math.gcd(a, b)
