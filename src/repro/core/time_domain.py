"""Discrete time domain and graph lifetimes.

The paper studies TVGs over a temporal domain ``T`` (``N`` for discrete
systems).  This reproduction uses discrete integer time throughout: every
construction in the paper (Figure 1, the Gödel-clock encodings of Theorem
2.1, the dilation of Theorem 2.3) is stated over integer dates, and a
discrete domain keeps journey search exact.

Infinity is represented by :data:`INFINITY` (``math.inf``), so a lifetime
may be right-unbounded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TimeDomainError

#: Right-open upper bound for unbounded lifetimes.
INFINITY: float = math.inf


def require_window(start: int, end: int) -> None:
    """Validate the half-open study window ``[start, end)``.

    The analysis layer's shared precondition: every bounded-window
    checker and curve works over ``[start, end)`` and an empty window
    would silently produce vacuous answers, so it raises
    :class:`TimeDomainError` instead.

    >>> require_window(0, 5)
    >>> require_window(5, 5)
    Traceback (most recent call last):
        ...
    repro.errors.TimeDomainError: empty window [5, 5)
    """
    if end <= start:
        raise TimeDomainError(f"empty window [{start}, {end})")


@dataclass(frozen=True)
class Lifetime:
    """The time span ``[start, end)`` over which a TVG is studied.

    ``end`` may be :data:`INFINITY` for systems observed forever.  The
    interval is half-open: ``end`` itself is not a usable date.

    >>> lt = Lifetime(0, 10)
    >>> 9 in lt, 10 in lt
    (True, False)
    """

    start: int = 0
    end: float = INFINITY

    def __post_init__(self) -> None:
        if not isinstance(self.start, int):
            raise TimeDomainError(f"lifetime start must be an int, got {self.start!r}")
        if self.end != INFINITY and not isinstance(self.end, int):
            raise TimeDomainError(
                f"lifetime end must be an int or INFINITY, got {self.end!r}"
            )
        if self.end != INFINITY and self.end < self.start:
            raise TimeDomainError(
                f"lifetime end {self.end} precedes start {self.start}"
            )

    @property
    def bounded(self) -> bool:
        """Whether the lifetime has a finite right endpoint."""
        return self.end != INFINITY

    @property
    def duration(self) -> float:
        """Length of the lifetime (may be :data:`INFINITY`)."""
        return self.end - self.start

    def __contains__(self, time: object) -> bool:
        if not isinstance(time, int):
            return False
        return self.start <= time and time < self.end

    def times(self) -> range:
        """Iterate every date in a bounded lifetime.

        Raises :class:`TimeDomainError` on unbounded lifetimes, where the
        iteration would never terminate.
        """
        if not self.bounded:
            raise TimeDomainError("cannot enumerate an unbounded lifetime")
        return range(self.start, int(self.end))

    def clamp(self, horizon: int) -> "Lifetime":
        """Return this lifetime truncated to end no later than ``horizon``."""
        if horizon < self.start:
            raise TimeDomainError(
                f"horizon {horizon} precedes lifetime start {self.start}"
            )
        end = horizon if not self.bounded else min(int(self.end), horizon)
        return Lifetime(self.start, end)

    def require(self, time: int) -> None:
        """Raise :class:`TimeDomainError` unless ``time`` lies in the span."""
        if time not in self:
            raise TimeDomainError(
                f"time {time} outside lifetime [{self.start}, {self.end})"
            )
