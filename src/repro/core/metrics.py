"""Temporal distance metrics.

The three classical journey metrics over TVGs:

* **foremost** — arrive as early as possible;
* **shortest** — use as few hops as possible;
* **fastest** — minimize elapsed time (arrival - departure), choosing the
  best departure date.

All are computed per waiting semantics, which is where the paper's theme
shows up quantitatively: with waiting, foremost distances only improve.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.journeys import Hop, Journey
from repro.core.semantics import NO_WAIT, WaitingSemantics
from repro.core.traversal import (
    _resolve_horizon,
    earliest_arrivals,
    edge_departures,
)
from repro.core.tvg import TimeVaryingGraph


def temporal_distance(
    graph: TimeVaryingGraph,
    source: Hashable,
    target: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
) -> int | None:
    """Foremost delay: earliest arrival at ``target`` minus ``start_time``.

    ``None`` when no feasible journey exists before the horizon.  The
    distance from a node to itself is 0.
    """
    if source == target:
        return 0
    arrivals = earliest_arrivals(graph, source, start_time, semantics, horizon)
    if target not in arrivals:
        return None
    return arrivals[target] - start_time


def shortest_journey(
    graph: TimeVaryingGraph,
    source: Hashable,
    target: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_hops: int = 64,
) -> Journey | None:
    """A feasible journey with the minimum number of hops.

    Breadth-first over hop count; among journeys of minimal hop count the
    one found first is returned.
    """
    horizon = _resolve_horizon(graph, horizon)
    start_state = (source, start_time)
    parents: dict[tuple[Hashable, int], tuple[tuple[Hashable, int], Hop] | None] = {
        start_state: None
    }
    queue: deque[tuple[Hashable, int, int]] = deque([(source, start_time, 0)])
    while queue:
        node, ready, hops = queue.popleft()
        if hops >= max_hops:
            continue
        for edge in graph.out_edges(node):
            for departure in edge_departures(edge, ready, semantics, horizon):
                arrival = departure + edge.latency(departure)
                state = (edge.target, arrival)
                if state in parents:
                    continue
                parents[state] = ((node, ready), Hop(edge, departure))
                if edge.target == target:
                    return _rebuild(parents, state)
                queue.append((edge.target, arrival, hops + 1))
    return None


def fastest_journey(
    graph: TimeVaryingGraph,
    source: Hashable,
    target: Hashable,
    window_start: int,
    window_end: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_hops: int = 64,
) -> Journey | None:
    """A feasible journey minimizing elapsed time over departure dates.

    Scans each candidate start date in ``[window_start, window_end)``,
    computes a foremost journey from it, and keeps the quickest.  This is
    the textbook reduction of *fastest* to repeated *foremost*.
    """
    from repro.core.traversal import foremost_journey

    best: Journey | None = None
    for start in range(window_start, window_end):
        journey = foremost_journey(
            graph, source, target, start, semantics, horizon, max_hops
        )
        if journey is None:
            continue
        if best is None or journey.duration < best.duration:
            best = journey
    return best


def eccentricity(
    graph: TimeVaryingGraph,
    source: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
) -> int | None:
    """Largest foremost delay from ``source`` to any other node.

    ``None`` if some node is unreachable before the horizon.
    """
    arrivals = earliest_arrivals(graph, source, start_time, semantics, horizon)
    worst = 0
    for node in graph.nodes:
        if node == source:
            continue
        if node not in arrivals:
            return None
        worst = max(worst, arrivals[node] - start_time)
    return worst


def temporal_diameter(
    graph: TimeVaryingGraph,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
) -> int | None:
    """Largest foremost delay over all ordered node pairs.

    ``None`` if the graph is not temporally connected from ``start_time``
    within the horizon.
    """
    worst = 0
    for source in graph.nodes:
        ecc = eccentricity(graph, source, start_time, semantics, horizon)
        if ecc is None:
            return None
        worst = max(worst, ecc)
    return worst


def _rebuild(parents, state) -> Journey:
    hops: list[Hop] = []
    cursor = state
    while True:
        entry = parents[cursor]
        if entry is None:
            break
        previous, hop = entry
        hops.append(hop)
        cursor = previous
    hops.reverse()
    return Journey(hops)
