"""Journey counting without enumeration.

Dynamic programming over temporal states: the number of feasible
journeys (per destination, per hop count) from a source configuration,
under any waiting semantics.  Counts grow exponentially where journeys
branch, so results are exact Python integers.

Counting is the quantitative sibling of the expressivity work:
journey counts bound the language growth rate, and the benchmarks use
them to size enumerations before running them.  (Word-level counting
lives in :func:`repro.automata.language_compute.count_words`, next to
the configuration-set construction it runs.)
"""

from __future__ import annotations

from typing import Hashable

from repro.core.semantics import NO_WAIT, WaitingSemantics
from repro.core.traversal import _resolve_horizon, edge_departures
from repro.core.tvg import TimeVaryingGraph


def count_journeys(
    graph: TimeVaryingGraph,
    source: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_hops: int = 8,
) -> dict[Hashable, int]:
    """Number of feasible journeys (1..max_hops hops) to each node.

    Two journeys are distinct when any hop differs in edge *or*
    departure date — the same resolution the enumerator uses, so
    ``sum(counts.values()) == len(list(enumerate_journeys(...)))``.
    """
    horizon = _resolve_horizon(graph, horizon)
    # occupancy[(node, ready)] = number of distinct journey prefixes
    # currently parked at that temporal state.
    occupancy: dict[tuple[Hashable, int], int] = {(source, start_time): 1}
    totals: dict[Hashable, int] = {}
    for _hop in range(max_hops):
        advanced: dict[tuple[Hashable, int], int] = {}
        for (node, ready), ways in occupancy.items():
            for edge in graph.out_edges(node):
                for departure in edge_departures(edge, ready, semantics, horizon):
                    arrival = departure + edge.latency(departure)
                    state = (edge.target, arrival)
                    advanced[state] = advanced.get(state, 0) + ways
        if not advanced:
            break
        for (node, _time), ways in advanced.items():
            totals[node] = totals.get(node, 0) + ways
        occupancy = advanced
    return totals


def count_journeys_by_hops(
    graph: TimeVaryingGraph,
    source: Hashable,
    start_time: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_hops: int = 8,
) -> list[int]:
    """``result[k]`` = number of feasible journeys of exactly ``k`` hops.

    ``result[0]`` is always 1 (the empty prefix, not itself a journey).
    """
    horizon = _resolve_horizon(graph, horizon)
    occupancy: dict[tuple[Hashable, int], int] = {(source, start_time): 1}
    per_hop = [1]
    for _hop in range(max_hops):
        advanced: dict[tuple[Hashable, int], int] = {}
        for (node, ready), ways in occupancy.items():
            for edge in graph.out_edges(node):
                for departure in edge_departures(edge, ready, semantics, horizon):
                    arrival = departure + edge.latency(departure)
                    state = (edge.target, arrival)
                    advanced[state] = advanced.get(state, 0) + ways
        per_hop.append(sum(advanced.values()))
        if not advanced:
            break
        occupancy = advanced
    return per_hop

