"""Journeys: paths over time.

A journey is a walk ``<e_1, ..., e_k>`` with starting dates
``<t_1, ..., t_k>`` such that edge ``e_i`` is present at ``t_i`` and
``t_{i+1} >= t_i + zeta(e_i, t_i)``.  It is *direct* when every such
inequality is an equality and *indirect* otherwise.  The word of a
journey is the sequence of its edge labels; the languages the paper
studies are sets of journey words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

from repro.core.edges import Edge
from repro.core.semantics import NO_WAIT, WaitingSemantics
from repro.errors import InvalidJourneyError


@dataclass(frozen=True)
class Hop:
    """One edge traversal within a journey: ``edge`` taken at ``start``."""

    edge: Edge
    start: int

    @property
    def arrival(self) -> int:
        """Date at which the traversal completes."""
        return self.start + self.edge.latency(self.start)

    def __repr__(self) -> str:
        return f"Hop({self.edge.key or self.edge.label}@{self.start}->{self.arrival})"


class Journey:
    """An immutable, validated journey.

    Validation happens at construction: edges must chain (each hop starts
    where the previous one ended), every edge must be present at its
    starting date, and pauses must be non-negative.  Whether the pauses
    fit a given waiting regime is a separate question answered by
    :meth:`feasible_under` — the same journey object can be tested
    against several semantics.
    """

    __slots__ = ("_hops", "_pauses")

    def __init__(self, hops: Iterable[Hop]) -> None:
        hops = tuple(hops)
        if not hops:
            raise InvalidJourneyError("a journey needs at least one hop")
        pauses: list[int] = []
        for i, hop in enumerate(hops):
            if not hop.edge.present_at(hop.start):
                raise InvalidJourneyError(
                    f"hop {i}: edge {hop.edge!r} absent at time {hop.start}"
                )
            if i > 0:
                previous = hops[i - 1]
                if previous.edge.target != hop.edge.source:
                    raise InvalidJourneyError(
                        f"hop {i}: edge {hop.edge!r} does not start at "
                        f"{previous.edge.target!r} where hop {i - 1} ended"
                    )
                pause = hop.start - previous.arrival
                if pause < 0:
                    raise InvalidJourneyError(
                        f"hop {i} departs at {hop.start}, before the previous "
                        f"arrival at {previous.arrival}"
                    )
                pauses.append(pause)
        self._hops = hops
        self._pauses = tuple(pauses)

    # -- structure -------------------------------------------------------------

    @property
    def hops(self) -> tuple[Hop, ...]:
        return self._hops

    def __len__(self) -> int:
        return len(self._hops)

    def __iter__(self) -> Iterator[Hop]:
        return iter(self._hops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Journey):
            return NotImplemented
        return self._hops == other._hops

    def __hash__(self) -> int:
        return hash(self._hops)

    @property
    def source(self) -> Hashable:
        """Node where the journey begins."""
        return self._hops[0].edge.source

    @property
    def destination(self) -> Hashable:
        """Node where the journey ends."""
        return self._hops[-1].edge.target

    @property
    def departure(self) -> int:
        """Date of the first edge traversal."""
        return self._hops[0].start

    @property
    def arrival(self) -> int:
        """Date at which the last traversal completes."""
        return self._hops[-1].arrival

    @property
    def duration(self) -> int:
        """Total elapsed time, waiting included (the *fastest* metric)."""
        return self.arrival - self.departure

    def nodes(self) -> tuple[Hashable, ...]:
        """The node sequence visited, length ``len(self) + 1``."""
        return (self.source,) + tuple(hop.edge.target for hop in self._hops)

    # -- waiting ---------------------------------------------------------------

    @property
    def pauses(self) -> tuple[int, ...]:
        """Waiting time before each hop after the first."""
        return self._pauses

    @property
    def max_pause(self) -> int:
        """Longest single pause (0 for direct journeys)."""
        return max(self._pauses, default=0)

    @property
    def total_waiting(self) -> int:
        """Sum of all pauses."""
        return sum(self._pauses)

    @property
    def is_direct(self) -> bool:
        """Whether every edge was taken the instant the previous arrival
        completed — the paper's *direct journey*."""
        return self.max_pause == 0

    @property
    def is_indirect(self) -> bool:
        return not self.is_direct

    def feasible_under(self, semantics: WaitingSemantics = NO_WAIT) -> bool:
        """Whether the environment described by ``semantics`` allows this
        journey (every pause within the waiting budget)."""
        return all(semantics.allows_pause(p) for p in self._pauses)

    # -- language view -----------------------------------------------------------

    @property
    def word(self) -> tuple[str, ...]:
        """The label sequence of the journey (symbols of ``Sigma``).

        Unlabeled edges contribute nothing, mirroring epsilon-transitions.
        """
        return tuple(hop.edge.label for hop in self._hops if hop.edge.label is not None)

    @property
    def word_str(self) -> str:
        """The word as a plain string (labels concatenated)."""
        return "".join(self.word)

    # -- composition ------------------------------------------------------------

    def extend(self, edge: Edge, start: int) -> "Journey":
        """A new journey with one more hop appended (validated)."""
        return Journey(self._hops + (Hop(edge, start),))

    def prefix(self, length: int) -> "Journey":
        """The journey made of the first ``length`` hops."""
        if not 1 <= length <= len(self._hops):
            raise InvalidJourneyError(
                f"prefix length {length} outside 1..{len(self._hops)}"
            )
        return Journey(self._hops[:length])

    @classmethod
    def concatenate(cls, first: "Journey", second: "Journey") -> "Journey":
        """Join two journeys end-to-start (validated, pause allowed)."""
        return cls(first.hops + second.hops)

    def __repr__(self) -> str:
        word = self.word_str or "(unlabeled)"
        return (
            f"Journey({self.source!r}@{self.departure} -> "
            f"{self.destination!r}@{self.arrival}, word={word!r}, "
            f"hops={len(self)}, max_pause={self.max_pause})"
        )


def journey_word(hops: Sequence[Hop]) -> str:
    """The word spelled by a hop sequence without building a Journey."""
    return "".join(h.edge.label for h in hops if h.edge.label is not None)
