"""Waiting semantics.

The paper distinguishes three regimes for what a journey may do between
consecutive edges:

* **no-wait** — only *direct* journeys: each edge is taken the instant
  the previous traversal finishes (``t_{i+1} = t_i + zeta(e_i, t_i)``).
* **wait** — *indirect* journeys: arbitrary pauses are allowed
  (``t_{i+1} >= t_i + zeta(e_i, t_i)``), modelling store-carry-forward
  buffering.
* **wait[d]** — bounded waiting: pauses of at most ``d`` time units.

``wait[0]`` coincides with no-wait, and the three Theorems are exactly
statements about the language classes these regimes generate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticsError


@dataclass(frozen=True)
class WaitingSemantics:
    """A waiting regime.

    ``max_wait`` is ``None`` for unbounded waiting, otherwise the largest
    allowed pause (0 = no waiting).  Use the module constants
    :data:`NO_WAIT` and :data:`WAIT`, or :func:`bounded_wait` for
    ``wait[d]``.
    """

    max_wait: int | None

    def __post_init__(self) -> None:
        if self.max_wait is not None and self.max_wait < 0:
            raise SemanticsError(f"waiting bound must be >= 0, got {self.max_wait}")

    @property
    def unbounded(self) -> bool:
        """Whether arbitrary pauses are allowed."""
        return self.max_wait is None

    @property
    def is_no_wait(self) -> bool:
        """Whether only direct journeys are feasible."""
        return self.max_wait == 0

    def allows_pause(self, pause: int) -> bool:
        """Whether a pause of ``pause`` time units is feasible."""
        if pause < 0:
            return False
        return self.max_wait is None or pause <= self.max_wait

    def latest_departure(self, ready: int, horizon: int) -> int:
        """Latest date (exclusive bound) a journey ready at ``ready`` may
        still depart, given a search horizon."""
        if self.max_wait is None:
            return horizon
        return min(horizon, ready + self.max_wait + 1)

    def __str__(self) -> str:
        if self.max_wait is None:
            return "wait"
        if self.max_wait == 0:
            return "nowait"
        return f"wait[{self.max_wait}]"


#: Only direct journeys are feasible (no buffering).
NO_WAIT = WaitingSemantics(max_wait=0)

#: Indirect journeys with unbounded pauses are feasible.
WAIT = WaitingSemantics(max_wait=None)


def bounded_wait(d: int) -> WaitingSemantics:
    """The ``wait[d]`` regime: pauses of at most ``d`` time units.

    ``bounded_wait(0)`` equals :data:`NO_WAIT`.
    """
    return WaitingSemantics(max_wait=d)


#: Alias matching the paper's ``L_wait[d]`` notation.
BOUNDED_WAIT = bounded_wait


def parse_semantics(text: str) -> WaitingSemantics:
    """The semantics named by its string form (inverse of ``str``).

    Accepts ``"wait"``, ``"nowait"``, and ``"wait[d]"`` with ``d`` a
    non-negative integer; anything else raises
    :class:`~repro.errors.SemanticsError`.  This is the ONE grammar for
    semantics strings — the CLI and the service wire protocol both parse
    through it and wrap the error into their native type
    (``argparse.ArgumentTypeError`` / ``ServiceError``), so a malformed
    ``wait[-1]`` is a clean diagnostic at every boundary, never a raw
    traceback.
    """
    if not isinstance(text, str):
        raise SemanticsError(f"semantics must be a string, got {text!r}")
    if text == "wait":
        return WAIT
    if text == "nowait":
        return NO_WAIT
    if text.startswith("wait[") and text.endswith("]"):
        body = text[5:-1]
        try:
            bound = int(body)
        except ValueError:
            raise SemanticsError(
                f"malformed waiting bound {body!r} in {text!r}; "
                f"wait[d] needs an integer d >= 0"
            ) from None
        return bounded_wait(bound)
    raise SemanticsError(
        f"unknown semantics {text!r}; use 'wait', 'nowait', or 'wait[d]'"
    )
