"""JSON (de)serialization of time-varying graphs.

Round-trippable persistence for the schedule shapes that have an exact
finite description — interval sets, periodic patterns, constant/affine
latencies.  Black-box callables (the Theorem 2.1 clockwork) have no
finite description by design; serializing them raises, with a pointer
to sampling into intervals via :func:`sampled` instead.

Format (version 1)::

    {
      "format": "repro-tvg",
      "version": 1,
      "name": "...", "lifetime": [0, 60] | [0, null], "period": 6 | null,
      "nodes": [...],
      "edges": [
        {"key": "e0", "source": "a", "target": "b", "label": "x",
         "presence": {"kind": "intervals", "pairs": [[0, 3], [8, 9]]},
         "latency": {"kind": "constant", "value": 1}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.intervals import Interval, IntervalSet
from repro.core.latency import (
    AffineLatency,
    ConstantLatency,
    LatencyFunction,
    TableLatency,
    affine_latency,
    constant_latency,
    table_latency,
)
from repro.core.presence import (
    IntervalPresence,
    PeriodicPresence,
    PresenceFunction,
    _AlwaysPresence,
    _NeverPresence,
    always,
    interval_presence,
    never,
    periodic_presence,
)
from repro.core.time_domain import INFINITY, Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError, TraceFormatError

FORMAT = "repro-tvg"
VERSION = 1


# -- schedule encoders ----------------------------------------------------------------


def encode_presence(presence: PresenceFunction) -> dict[str, Any]:
    if isinstance(presence, _AlwaysPresence):
        return {"kind": "always"}
    if isinstance(presence, _NeverPresence):
        return {"kind": "never"}
    if isinstance(presence, IntervalPresence):
        return {
            "kind": "intervals",
            "pairs": [[iv.start, iv.end] for iv in presence.intervals],
        }
    if isinstance(presence, PeriodicPresence):
        return {
            "kind": "periodic",
            "pattern": sorted(presence.pattern),
            "period": presence.period,
        }
    raise ReproError(
        f"{type(presence).__name__} has no finite description; sample it "
        "into intervals first (repro.core.serialize.sampled)"
    )


def decode_presence(data: dict[str, Any]) -> PresenceFunction:
    kind = data.get("kind")
    if kind == "always":
        return always()
    if kind == "never":
        return never()
    if kind == "intervals":
        return interval_presence([tuple(pair) for pair in data["pairs"]])
    if kind == "periodic":
        return periodic_presence(data["pattern"], data["period"])
    raise TraceFormatError(0, f"unknown presence kind {kind!r}")


def encode_latency(latency: LatencyFunction) -> dict[str, Any]:
    if isinstance(latency, ConstantLatency):
        return {"kind": "constant", "value": latency.value}
    if isinstance(latency, AffineLatency):
        return {
            "kind": "affine",
            "slope": latency.slope,
            "intercept": latency.intercept,
        }
    if isinstance(latency, TableLatency):
        return {
            "kind": "table",
            "entries": sorted(latency.table.items()),
            "default": latency.default,
        }
    raise ReproError(
        f"{type(latency).__name__} has no finite description; use a "
        "constant/affine/table latency for serializable graphs"
    )


def decode_latency(data: dict[str, Any]) -> LatencyFunction:
    kind = data.get("kind")
    if kind == "constant":
        return constant_latency(data["value"])
    if kind == "affine":
        return affine_latency(data["slope"], data["intercept"])
    if kind == "table":
        return table_latency(
            {int(t): int(v) for t, v in data["entries"]}, data["default"]
        )
    raise TraceFormatError(0, f"unknown latency kind {kind!r}")


# -- graph level ----------------------------------------------------------------------


def to_dict(graph: TimeVaryingGraph) -> dict[str, Any]:
    """The JSON-ready dictionary form of a graph."""
    end = None if not graph.lifetime.bounded else int(graph.lifetime.end)
    return {
        "format": FORMAT,
        "version": VERSION,
        "name": graph.name,
        "lifetime": [graph.lifetime.start, end],
        "period": graph.period,
        "nodes": [str(node) for node in graph.nodes],
        "edges": [
            {
                "key": edge.key,
                "source": str(edge.source),
                "target": str(edge.target),
                "label": edge.label,
                "presence": encode_presence(edge.presence),
                "latency": encode_latency(edge.latency),
            }
            for edge in graph.edges
        ],
    }


def from_dict(data: dict[str, Any]) -> TimeVaryingGraph:
    """Rebuild a graph from its dictionary form."""
    if data.get("format") != FORMAT:
        raise TraceFormatError(0, f"not a {FORMAT} document")
    if data.get("version") != VERSION:
        raise TraceFormatError(0, f"unsupported version {data.get('version')!r}")
    start, end = data["lifetime"]
    lifetime = Lifetime(start, INFINITY if end is None else end)
    graph = TimeVaryingGraph(
        lifetime=lifetime, period=data.get("period"), name=data.get("name", "")
    )
    graph.add_nodes(data.get("nodes", []))
    for entry in data.get("edges", []):
        graph.add_edge(
            entry["source"],
            entry["target"],
            label=entry.get("label"),
            presence=decode_presence(entry["presence"]),
            latency=decode_latency(entry["latency"]),
            key=entry["key"],
        )
    return graph


def dumps(graph: TimeVaryingGraph, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(graph), indent=indent)


def loads(text: str) -> TimeVaryingGraph:
    """Deserialize from a JSON string."""
    return from_dict(json.loads(text))


def save(graph: TimeVaryingGraph, path: str | Path) -> None:
    """Write the JSON form to disk."""
    Path(path).write_text(dumps(graph), encoding="utf-8")


def load(path: str | Path) -> TimeVaryingGraph:
    """Read a JSON graph from disk."""
    return loads(Path(path).read_text(encoding="utf-8"))


def sampled(
    graph: TimeVaryingGraph, start: int, end: int, name: str | None = None
) -> TimeVaryingGraph:
    """A serializable snapshot of any graph over a window.

    Black-box presences are sampled into interval sets and latencies into
    tables over the present dates — the lossless finite view of the
    window, and the escape hatch for persisting clockwork graphs.
    """
    if end <= start:
        raise ReproError(f"empty window [{start}, {end})")
    window = Interval(start, end)
    result = TimeVaryingGraph(
        lifetime=Lifetime(start, end),
        period=graph.period,
        name=name if name is not None else f"{graph.name}@[{start},{end})",
    )
    result.add_nodes(graph.nodes)
    for edge in graph.edges:
        support = edge.presence.support(window)
        latencies = {t: edge.latency(t) for t in support.times()}
        result.add_edge(
            edge.source,
            edge.target,
            label=edge.label,
            presence=IntervalPresence(IntervalSet(list(support))),
            latency=table_latency(latencies, default=1),
            key=edge.key,
        )
    return result
