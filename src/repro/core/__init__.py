"""Core time-varying-graph substrate.

This package implements the TVG model of Casteigts, Flocchini,
Quattrociocchi and Santoro ("Time-varying graphs and dynamic networks",
ADHOC-NOW 2011), which the paper under reproduction uses as its formal
foundation: a graph whose edges carry a *presence* function (is the edge
available at time ``t``?) and a *latency* function (how long does crossing
it take when started at time ``t``?), together with journeys — paths over
time — under three waiting semantics.
"""

from repro.core.builders import TVGBuilder
from repro.core.edges import Edge
from repro.core.engine import UNREACHED, TemporalEngine
from repro.core.index import CompiledTVG, LazyContactCache
from repro.core.intervals import Interval, IntervalSet
from repro.core.journeys import Hop, Journey
from repro.core.latency import (
    LatencyFunction,
    affine_latency,
    constant_latency,
    function_latency,
    table_latency,
)
from repro.core.parallel import SweepPlan, sharded_arrival_matrix
from repro.core.presence import (
    PresenceFunction,
    always,
    at_times,
    function_presence,
    interval_presence,
    never,
    periodic_presence,
)
from repro.core.semantics import (
    BOUNDED_WAIT,
    NO_WAIT,
    WAIT,
    WaitingSemantics,
    bounded_wait,
    parse_semantics,
)
from repro.core.time_domain import INFINITY, Lifetime, require_window
from repro.core.tvg import TimeVaryingGraph

__all__ = [
    "BOUNDED_WAIT",
    "CompiledTVG",
    "Edge",
    "Hop",
    "INFINITY",
    "Interval",
    "IntervalSet",
    "Journey",
    "LazyContactCache",
    "LatencyFunction",
    "Lifetime",
    "NO_WAIT",
    "PresenceFunction",
    "SweepPlan",
    "TemporalEngine",
    "UNREACHED",
    "TVGBuilder",
    "TimeVaryingGraph",
    "WAIT",
    "WaitingSemantics",
    "affine_latency",
    "always",
    "at_times",
    "bounded_wait",
    "constant_latency",
    "function_latency",
    "function_presence",
    "interval_presence",
    "never",
    "parse_semantics",
    "periodic_presence",
    "require_window",
    "sharded_arrival_matrix",
    "table_latency",
]
