"""Labeled time-varying edges.

An edge is a relation ``(u, v, label)`` in ``E ⊆ V x V x Sigma`` carrying
its own presence function ``rho`` and latency function ``zeta``.  Parallel
edges between the same endpoints (even with the same label) are allowed
and distinguished by a ``key`` — Figure 1 of the paper needs two distinct
``b``-labeled edges out of the same node with different schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable

from repro.core.latency import LatencyFunction, constant_latency
from repro.core.presence import PresenceFunction, always
from repro.errors import EdgeNotPresentError


@dataclass(frozen=True)
class Edge:
    """A directed, labeled, time-varying edge.

    Attributes:
        source: Tail node.
        target: Head node.
        label: Symbol from the alphabet, or ``None`` for unlabeled edges
            (pure connectivity studies don't need labels).
        key: Unique identifier within the graph; also the name used in
            error messages and trace files.
        presence: The edge's ``rho`` — when it is available.
        latency: The edge's ``zeta`` — how long a traversal started at a
            given date takes.
    """

    source: Hashable
    target: Hashable
    label: str | None = None
    key: str = ""
    presence: PresenceFunction = field(default_factory=always)
    latency: LatencyFunction = field(default_factory=constant_latency)

    def present_at(self, time: int) -> bool:
        """Whether the edge can start being crossed at ``time``."""
        return self.presence(time)

    def traverse(self, time: int) -> int:
        """Arrival date of a traversal started at ``time``.

        Raises :class:`EdgeNotPresentError` if the edge is absent then —
        a traversal may only *start* while the edge is present.
        """
        if not self.presence(time):
            raise EdgeNotPresentError(self.key or (self.source, self.target), time)
        return time + self.latency(time)

    def shifted(self, delta: int) -> "Edge":
        """The same edge with its schedule translated by ``delta``."""
        return replace(
            self,
            presence=self.presence.shifted(delta),
            latency=self.latency.shifted(delta),
        )

    def dilated(self, factor: int) -> "Edge":
        """The same edge under sparse time dilation (Theorem 2.3)."""
        return replace(
            self,
            presence=self.presence.dilated(factor),
            latency=self.latency.dilated(factor),
        )

    def relabeled(self, label: str | None) -> "Edge":
        """The same edge carrying a different symbol."""
        return replace(self, label=label)

    def with_presence(self, presence: PresenceFunction) -> "Edge":
        """The same edge following a different schedule."""
        return replace(self, presence=presence)

    def reversed(self, key: str | None = None) -> "Edge":
        """The edge with source and target swapped (same schedule).

        Used to model undirected contacts as a pair of directed edges.
        """
        return replace(
            self,
            source=self.target,
            target=self.source,
            key=key if key is not None else f"{self.key}~rev",
        )

    def __repr__(self) -> str:
        label = "" if self.label is None else f":{self.label}"
        return f"Edge({self.key or '?'}: {self.source!r}->{self.target!r}{label})"
