"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library's showcase objects:

* ``figure1`` — test words against the paper's Figure 1 automaton;
* ``universal`` — build the Theorem 2.1 graph for a stock language and
  sample its no-wait language;
* ``extract`` — compute the wait-language DFA of a trace/periodic graph;
* ``broadcast`` — run the store-carry-forward comparison on a random
  network;
* ``reach`` — reachability ratios and the waiting gap of a trace or
  random network, via the compiled engine or the interpretive oracle;
* ``growth`` — the reachability growth curves ``r_wait``/``r_nowait``
  and the integrated value of waiting, via one batched arrival sweep
  per semantics (or the interpretive oracle);
* ``serve`` — run the long-lived JSON-lines query service over a trace
  or generated network (queries and mutations over one socket, results
  cached per graph version);
* ``worker`` — run a long-lived arrival-sweep worker; ``reach``,
  ``growth``, and ``serve`` ship sweep blocks to a fleet of these via
  ``--workers host:port,...`` (failed blocks re-swept locally, so
  answers are always exact);
* ``render`` — print the ASCII schedule of a contact trace;
* ``lint`` — run the project's own AST invariant checks (layering,
  version-bump completeness, plan purity, boundary errors, async
  hygiene, wire completeness) over ``src/repro``.

All subcommands print plain text and exit non-zero on verification
failure, so they compose with shell pipelines and CI.
"""

from __future__ import annotations

import argparse
import sys

from repro import NO_WAIT, WAIT, figure1_automaton, nowait_automaton_for
from repro.core.semantics import WaitingSemantics, parse_semantics
from repro.errors import SemanticsError


def _semantics(text: str) -> WaitingSemantics:
    """Argparse adapter over the one shared semantics grammar
    (:func:`repro.core.semantics.parse_semantics`): malformed strings —
    including a negative bound like ``wait[-1]`` — become a clean
    argparse usage error instead of a traceback."""
    try:
        return parse_semantics(text)
    except SemanticsError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _workers(text: str) -> list[str]:
    """A comma-separated ``host:port`` list, validated up front so a
    typo is a usage error at launch, not a per-sweep fallback."""
    from repro.errors import ServiceError
    from repro.service.cluster import parse_worker_address

    addresses = [part.strip() for part in text.split(",") if part.strip()]
    if not addresses:
        raise argparse.ArgumentTypeError("at least one host:port is required")
    for address in addresses:
        try:
            parse_worker_address(address)
        except ServiceError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    return addresses


def _cluster(args: argparse.Namespace):
    """The ClusterExecutor a command's ``--workers`` asks for (or None)."""
    if not getattr(args, "workers", None):
        return None
    from repro.service.cluster import (
        DEFAULT_OVERSPLIT,
        DEFAULT_TIMEOUT,
        ClusterExecutor,
    )

    timeout = getattr(args, "worker_timeout", None)
    oversplit = getattr(args, "oversplit", None)
    return ClusterExecutor(
        args.workers,
        timeout=DEFAULT_TIMEOUT if timeout is None else timeout,
        oversplit=DEFAULT_OVERSPLIT if oversplit is None else oversplit,
    )


def cmd_figure1(args: argparse.Namespace) -> int:
    automaton = figure1_automaton(p=args.p, q=args.q)
    failures = 0
    for word in args.words:
        accepted = automaton.accepts(word, args.semantics, horizon=args.horizon)
        print(f"{word!r}: {'accept' if accepted else 'reject'}")
        if args.expect is not None and accepted != (args.expect == "accept"):
            failures += 1
    return 1 if failures else 0


def cmd_universal(args: argparse.Namespace) -> int:
    from repro.machines.programs import standard_deciders

    deciders = standard_deciders()
    if args.language not in deciders:
        print(f"unknown language {args.language!r}; choose from "
              f"{', '.join(sorted(deciders))}", file=sys.stderr)
        return 2
    decider = deciders[args.language]
    automaton = nowait_automaton_for(decider)
    built = automaton.language(args.depth, NO_WAIT)
    expected = decider.language_upto(args.depth)
    for word in sorted(built, key=lambda w: (len(w), w)):
        print(repr(word))
    ok = built == expected
    print(f"# L_nowait(G) == L({args.language}) up to {args.depth}: {ok}")
    return 0 if ok else 1


def cmd_extract(args: argparse.Namespace) -> int:
    from repro.automata.language_compute import wait_language_automaton
    from repro.automata.operations import minimize
    from repro.automata.tvg_automaton import TVGAutomaton
    from repro.dynamics.traces import load_trace

    graph = load_trace(args.trace)
    labeled = _label_all(graph, args.label)
    automaton = TVGAutomaton(
        labeled,
        initial=args.initial,
        accepting=args.accepting or list(labeled.nodes),
        start_time=0,
    )
    dfa = minimize(wait_language_automaton(automaton).to_dfa())
    print(f"minimal wait-language DFA: {len(dfa.states)} states, "
          f"{len(dfa.accepting)} accepting")
    return 0


def _label_all(graph, label: str):
    from repro.core.transforms import graph_like

    labeled = graph_like(graph)
    labeled.add_nodes(graph.nodes)
    for edge in graph.edges:
        labeled.add_edge_object(edge.relabeled(label))
    return labeled


def cmd_broadcast(args: argparse.Namespace) -> int:
    from repro.core.generators import edge_markovian_tvg
    from repro.dynamics.protocols.broadcast import simulate_broadcast

    graph = edge_markovian_tvg(
        args.nodes,
        horizon=args.horizon,
        birth=args.birth,
        death=args.death,
        seed=args.seed,
    )
    for buffering in (False, True):
        outcome = simulate_broadcast(graph, 0, buffering)
        mode = "buffered  " if buffering else "bufferless"
        done = outcome.completion_time
        print(
            f"{mode}: delivery {outcome.delivery_ratio:.2f}, "
            f"transmissions {outcome.transmissions}, "
            f"completed at {done if done is not None else '-'}"
        )
    return 0


def cmd_reach(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.reachability import reachability_matrix
    from repro.core.engine import TemporalEngine

    graph, start, horizon = _load_or_generate(args)
    engine = None if args.engine == "interpretive" else TemporalEngine(graph)
    cluster = _cluster(args)
    began = time.perf_counter()
    # The gap needs the WAIT and NO_WAIT matrices anyway; reuse whichever
    # also answers the requested ratio instead of sweeping a third time.
    _nodes, with_wait = reachability_matrix(
        graph, start, WAIT, horizon, engine=engine, shards=args.shards,
        cluster=cluster, kernel=args.kernel,
    )
    _same, without = reachability_matrix(
        graph, start, NO_WAIT, horizon, engine=engine, shards=args.shards,
        cluster=cluster, kernel=args.kernel,
    )
    gap = with_wait & ~without
    if args.semantics == WAIT:
        matrix = with_wait
    elif args.semantics == NO_WAIT:
        matrix = without
    else:
        _also, matrix = reachability_matrix(
            graph, start, args.semantics, horizon, engine=engine,
            shards=args.shards, cluster=cluster, kernel=args.kernel,
        )
    n = graph.node_count
    ratio = 1.0 if n <= 1 else (int(matrix.sum()) - n) / (n * (n - 1))
    elapsed = time.perf_counter() - began
    print(graph)
    print(f"engine:             {args.engine}")
    print(f"window:             [{start}, {horizon})")
    print(f"{args.semantics} ratio:         {ratio:.4f}")
    print(f"waiting-gap pairs:  {int(gap.sum())}")
    print(f"elapsed:            {elapsed * 1e3:.1f} ms")
    return 0


def _load_or_generate(args: argparse.Namespace):
    """The TVG and [start, horizon) window shared by reach/growth."""
    from repro.core.generators import periodic_random_tvg

    if args.trace is not None:
        from repro.dynamics.traces import load_trace

        graph = load_trace(args.trace)
    else:
        graph = periodic_random_tvg(
            args.nodes, period=args.period, density=args.density, seed=args.seed
        )
    horizon = args.horizon
    if horizon is None:
        if not graph.lifetime.bounded:
            horizon = graph.lifetime.start + 3 * (graph.period or 8)
        else:
            horizon = int(graph.lifetime.end)
    return graph, graph.lifetime.start, horizon


def cmd_growth(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.evolution import value_of_waiting
    from repro.core.engine import TemporalEngine

    graph, start, horizon = _load_or_generate(args)
    engine = None if args.engine == "interpretive" else TemporalEngine(graph)
    began = time.perf_counter()
    value = value_of_waiting(
        graph, start, horizon, engine=engine, shards=args.shards,
        cluster=_cluster(args), kernel=args.kernel,
    )
    elapsed = time.perf_counter() - began
    saturation = value.wait_saturation_time
    print(graph)
    print(f"engine:             {args.engine}")
    print(f"window:             [{start}, {horizon})")
    print(f"r_wait(end):        {value.wait_curve[-1][1]:.4f}")
    print(f"r_nowait(end):      {value.nowait_curve[-1][1]:.4f}")
    print(f"waiting area:       {value.area:.4f}")
    print(f"wait saturation:    {saturation if saturation is not None else '-'}")
    if args.curve:
        for (t, wait_value), (_t, nowait_value) in zip(
            value.wait_curve, value.nowait_curve
        ):
            print(f"  t={t:4d}  r_wait {wait_value:.4f}  r_nowait {nowait_value:.4f}")
    print(f"elapsed:            {elapsed * 1e3:.1f} ms")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.limits import AdmissionGate, RateLimiter
    from repro.service.server import run_service
    from repro.service.service import TVGService
    from repro.service.tasks import DEFAULT_MAX_TASKS

    graph, start, horizon = _load_or_generate(args)
    max_tasks = DEFAULT_MAX_TASKS if args.max_tasks is None else args.max_tasks
    service = TVGService(
        graph, window=(start, horizon), cache_size=args.cache_size,
        shards=args.shards, workers=args.workers,
        worker_timeout=args.worker_timeout, kernel=args.kernel,
        oversplit=args.oversplit, max_tasks=max_tasks,
    )
    limiter = None
    if args.rate_limit is not None:
        limiter = RateLimiter(
            args.rate_limit, window=args.rate_window, margin=args.rate_margin
        )
        print(
            f"rate limit:         {limiter.effective_limit} requests / "
            f"{args.rate_window}s per client"
        )
    gate = None
    if args.max_inflight is not None:
        gate = AdmissionGate(args.max_inflight)
        print(f"max in flight:      {args.max_inflight}")
    print(graph)
    print(f"window:             [{start}, {horizon})")
    try:
        asyncio.run(
            run_service(
                service, host=args.host, port=args.port,
                limiter=limiter, gate=gate,
            )
        )
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.cluster import run_worker

    try:
        asyncio.run(run_worker(host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("worker shutting down")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.core.render import render_schedule
    from repro.dynamics.traces import load_trace

    graph = load_trace(args.trace)
    print(render_schedule(graph, args.start, args.end))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.devtools import all_rules, run_lint

    rules = all_rules()
    if args.rule:
        wanted = set(args.rule)
        known = {rl.code for rl in rules}
        unknown = wanted - known
        if unknown:
            raise SystemExit(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = tuple(rl for rl in rules if rl.code in wanted)
    root = Path(args.root) if args.root else None
    report = run_lint(root=root, rules=rules)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    return 1 if report.findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Waiting in Dynamic Networks — reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure1", help="test words on the Figure 1 automaton")
    fig.add_argument("words", nargs="+")
    fig.add_argument("--semantics", type=_semantics, default=NO_WAIT)
    fig.add_argument("--horizon", type=int, default=None)
    fig.add_argument("-p", type=int, default=2)
    fig.add_argument("-q", type=int, default=3)
    fig.add_argument("--expect", choices=["accept", "reject"], default=None)
    fig.set_defaults(handler=cmd_figure1)

    uni = sub.add_parser("universal", help="Theorem 2.1 graph for a stock language")
    uni.add_argument("language")
    uni.add_argument("--depth", type=int, default=6)
    uni.set_defaults(handler=cmd_universal)

    ext = sub.add_parser("extract", help="wait-language DFA of a contact trace")
    ext.add_argument("trace")
    ext.add_argument("--initial", default=None, required=True)
    ext.add_argument("--accepting", nargs="*", default=None)
    ext.add_argument("--label", default="c")
    ext.set_defaults(handler=cmd_extract)

    bro = sub.add_parser("broadcast", help="buffered vs bufferless flooding")
    bro.add_argument("--nodes", type=int, default=12)
    bro.add_argument("--horizon", type=int, default=60)
    bro.add_argument("--birth", type=float, default=0.05)
    bro.add_argument("--death", type=float, default=0.5)
    bro.add_argument("--seed", type=int, default=0)
    bro.set_defaults(handler=cmd_broadcast)

    def add_network_options(
        command: argparse.ArgumentParser, engine_choice: bool = True
    ) -> None:
        command.add_argument(
            "--trace", default=None, help="trace file (else a random TVG)"
        )
        command.add_argument("--nodes", type=int, default=32)
        command.add_argument("--period", type=int, default=8)
        command.add_argument("--density", type=float, default=0.1)
        command.add_argument("--seed", type=int, default=0)
        command.add_argument("--horizon", type=int, default=None)
        command.add_argument(
            "--shards", type=int, default=None,
            help="shard the arrival sweep across N worker processes "
            "(compiled engine only; tiny graphs stay serial)",
        )
        command.add_argument(
            "--workers", type=_workers, default=None, metavar="HOST:PORT,...",
            help="ship arrival-sweep blocks to these remote sweep workers "
            "(`repro worker` processes); any failed block is re-swept "
            "locally, so answers never change",
        )
        command.add_argument(
            "--worker-timeout", type=float, default=None, metavar="SECONDS",
            help="seconds to wait per remote sweep job before re-running "
            "its block locally (default 30; raise it for sweeps whose "
            "blocks legitimately run long)",
        )
        command.add_argument(
            "--oversplit", type=int, default=None, metavar="N",
            help="sweep blocks per worker on the shared work-stealing "
            "queue (default 4; higher smooths stragglers, 1 disables "
            "stealing)",
        )
        command.add_argument(
            "--kernel", choices=["bitset", "bignum"], default=None,
            help="arrival-sweep kernel: the packed-uint64 bitset kernel "
            "(default) or the per-state bignum oracle (compiled engine "
            "only; REPRO_SWEEP_KERNEL overrides the default)",
        )
        if engine_choice:
            command.add_argument(
                "--engine",
                choices=["compiled", "interpretive"],
                default="compiled",
                help="compiled contact-sequence engine (default) or the legacy scans",
            )

    rea = sub.add_parser(
        "reach", help="reachability ratios and the waiting gap of a network"
    )
    add_network_options(rea)
    rea.add_argument("--semantics", type=_semantics, default=WAIT)
    rea.set_defaults(handler=cmd_reach)

    gro = sub.add_parser(
        "growth", help="reachability growth curves and the value of waiting"
    )
    add_network_options(gro)
    gro.add_argument(
        "--curve", action="store_true", help="print the per-date curve values"
    )
    gro.set_defaults(handler=cmd_growth)

    srv = sub.add_parser(
        "serve", help="run the JSON-lines query service over a network"
    )
    # The service always queries through the engine, so no --engine flag.
    add_network_options(srv, engine_choice=False)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7712)
    srv.add_argument(
        "--cache-size", type=int, default=256,
        help="max memoized query results held across mutations",
    )
    srv.add_argument(
        "--rate-limit", type=int, default=None,
        help="per-client requests admitted per --rate-window (default: "
        "no rate limiting)",
    )
    srv.add_argument(
        "--rate-window", type=float, default=1.0,
        help="sliding rate-limit window in seconds",
    )
    srv.add_argument(
        "--rate-margin", type=int, default=0,
        help="admit this many requests below the hard --rate-limit",
    )
    srv.add_argument(
        "--max-inflight", type=int, default=None,
        help="server-wide cap on concurrently dispatching requests "
        "(default: unbounded)",
    )
    srv.add_argument(
        "--max-tasks", type=int, default=None,
        help="bound on live background tasks in the submit/status/result "
        "table (default: 64)",
    )
    srv.set_defaults(handler=cmd_serve)

    wrk = sub.add_parser(
        "worker", help="run a long-lived arrival-sweep worker for --workers"
    )
    wrk.add_argument("--host", default="127.0.0.1")
    wrk.add_argument(
        "--port", type=int, default=7713,
        help="port to listen on (0 picks a free one, printed at startup)",
    )
    wrk.set_defaults(handler=cmd_worker)

    ren = sub.add_parser("render", help="ASCII schedule of a contact trace")
    ren.add_argument("trace")
    ren.add_argument("--start", type=int, default=None)
    ren.add_argument("--end", type=int, default=None)
    ren.set_defaults(handler=cmd_render)

    lnt = sub.add_parser(
        "lint", help="run the architecture invariant checks over src/repro"
    )
    lnt.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report style (json includes per-rule counts)",
    )
    lnt.add_argument(
        "--root", default=None,
        help="repo root to lint (default: the installed checkout)",
    )
    lnt.add_argument(
        "--rule", action="append", metavar="RLxxx",
        help="restrict to one rule code (repeatable)",
    )
    lnt.set_defaults(handler=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
