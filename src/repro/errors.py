"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TimeDomainError(ReproError):
    """A time value or interval is outside the graph's lifetime, or an
    operation mixes incompatible time domains."""


class EdgeNotPresentError(ReproError):
    """An edge traversal was scheduled at a time where the presence
    function of the edge is 0."""

    def __init__(self, edge, time) -> None:
        super().__init__(f"edge {edge!r} is not present at time {time}")
        self.edge = edge
        self.time = time


class InvalidJourneyError(ReproError):
    """A journey violates the feasibility rules of its waiting semantics
    (edge absent, non-contiguous hops, negative waiting, or waiting beyond
    the allowed bound)."""


class SemanticsError(ReproError):
    """An operation was asked to run under an unknown or inapplicable
    waiting semantics (e.g. a negative waiting bound)."""


class AutomatonError(ReproError):
    """A structural problem in an automaton definition (unknown state,
    symbol outside the alphabet, missing initial state, ...)."""


class RegexSyntaxError(AutomatonError):
    """The regular-expression parser rejected its input."""

    def __init__(self, pattern: str, position: int, message: str) -> None:
        super().__init__(f"invalid regex {pattern!r} at position {position}: {message}")
        self.pattern = pattern
        self.position = position


class MachineError(ReproError):
    """A structural problem in a Turing/counter machine definition."""


class MachineTimeoutError(MachineError):
    """A machine exceeded its step budget without halting.

    Deciders use this to distinguish "rejected" from "did not answer":
    a timeout never silently counts as rejection.
    """

    def __init__(self, steps: int) -> None:
        super().__init__(f"machine did not halt within {steps} steps")
        self.steps = steps


class ConstructionError(ReproError):
    """A paper construction received arguments outside its domain of
    validity (e.g. non-distinct primes for the Figure 1 graph)."""


class ExtractionError(ReproError):
    """Wait-language extraction was attempted on a TVG without a finite
    lifetime or declared period, where the time-expansion would be
    unbounded."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency (event in
    the past, unknown node, message to absent neighbour, ...)."""


class TraceFormatError(ReproError):
    """A TVG trace file could not be parsed."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"trace parse error on line {line_number}: {message}")
        self.line_number = line_number


class ServiceError(ReproError):
    """A query-service request was malformed or cannot be answered
    (unknown operation, unserializable presence, bad semantics string)."""


class RateLimitError(ServiceError):
    """A request was refused by admission control — the per-client
    sliding-window rate limit or the server-wide in-flight cap.

    ``retry_after`` is the server's back-off hint in seconds (how long
    until the client's oldest windowed timestamp expires, or a small
    constant for in-flight rejections).  The connection stays open and
    usable; rejection is a structured frame, never a drop.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class PlanMissError(ServiceError):
    """A sweep worker was sent a fingerprint-only block job for a plan
    it does not hold (never cached, or evicted from its bounded LRU).

    The one *recoverable* worker error: the executor answers it by
    re-shipping the full plan exactly once; anything else — including a
    second miss on the very connection that just received the plan —
    fails the job into the local re-sweep like any other fault.
    """
