"""repro — reproduction of "Waiting in Dynamic Networks" (PODC 2012).

Casteigts, Flocchini, Godard, Santoro, Yamashita: *Brief Announcement:
Waiting in Dynamic Networks* (full version: "Expressivity of
time-varying graphs and the power of waiting in dynamic networks",
arXiv:1205.1975).

The library implements the paper's model and all three theorems as
executable constructions:

* time-varying graphs, journeys, and the three waiting semantics
  (:mod:`repro.core`);
* TVG-automata and the classical automata toolkit they are compared
  against (:mod:`repro.automata`);
* the computability substrate supplying "any computable language"
  (:mod:`repro.machines`);
* the paper's constructions — Figure 1, the Theorem 2.1 universal
  no-wait graph, the regular embedding, the Theorem 2.3 dilation
  (:mod:`repro.constructions`);
* a store-carry-forward network simulator grounding the theory in the
  DTN setting the paper motivates (:mod:`repro.dynamics`);
* reachability / connectivity / expressivity analyses
  (:mod:`repro.analysis`).

Quickstart::

    from repro import figure1_automaton, NO_WAIT, WAIT

    fig1 = figure1_automaton()
    assert fig1.accepts("aabb", NO_WAIT)          # a^n b^n accepted
    assert not fig1.accepts("aab", NO_WAIT)
    assert fig1.accepts("b", WAIT, horizon=64)    # waiting changes the language
"""

from repro.automata import (
    DFA,
    NFA,
    TVGAutomaton,
    bounded_wait_language_automaton,
    nowait_language_automaton,
    wait_language_automaton,
)
from repro.constructions import (
    compile_bounded_wait,
    expand_for_bounded_wait,
    figure1_automaton,
    figure1_graph,
    nowait_automaton_for,
    regex_to_tvg,
)
from repro.core import (
    BOUNDED_WAIT,
    NO_WAIT,
    UNREACHED,
    WAIT,
    CompiledTVG,
    Edge,
    Hop,
    Journey,
    LazyContactCache,
    Lifetime,
    TemporalEngine,
    TimeVaryingGraph,
    TVGBuilder,
    WaitingSemantics,
    bounded_wait,
)
from repro.machines import Decider, TuringMachine, predicate_decider, tm_decider
from repro.service import QueryCache, ServiceClient, TVGService

__version__ = "1.0.0"

__all__ = [
    "BOUNDED_WAIT",
    "CompiledTVG",
    "DFA",
    "Decider",
    "Edge",
    "Hop",
    "Journey",
    "LazyContactCache",
    "Lifetime",
    "NFA",
    "NO_WAIT",
    "QueryCache",
    "ServiceClient",
    "TVGAutomaton",
    "TVGBuilder",
    "TVGService",
    "TemporalEngine",
    "TimeVaryingGraph",
    "TuringMachine",
    "UNREACHED",
    "WAIT",
    "WaitingSemantics",
    "bounded_wait",
    "bounded_wait_language_automaton",
    "compile_bounded_wait",
    "expand_for_bounded_wait",
    "figure1_automaton",
    "figure1_graph",
    "nowait_automaton_for",
    "nowait_language_automaton",
    "predicate_decider",
    "regex_to_tvg",
    "tm_decider",
    "wait_language_automaton",
    "__version__",
]
