"""Theorem 2.1 — every computable language is a no-wait language.

Given any total decision procedure ``D`` over alphabet ``Sigma``, build a
TVG ``G`` with ``L_nowait(G) = L(D)``.  The construction generalizes the
Figure 1 clockwork with the Gödel encoding of
:mod:`repro.constructions.godel`.  Three nodes:

* ``start`` — initial; accepting iff ``D`` accepts the empty word.  It
  must be left by the first symbol (otherwise every readable word would
  end on an accepting node), so it carries no self-loops.
* ``v0`` — the *reader*.  For each symbol ``s`` a self-loop labeled
  ``s`` is present exactly at dates ``t = enc(w)``, with latency
  ``enc(w.s) - t``: under no-wait semantics the clock after reading
  ``w`` is therefore *exactly* ``enc(w)``, always.
* ``acc`` — accepting.  For each symbol ``s``, exit edges
  ``start -> acc`` and ``v0 -> acc`` labeled ``s`` are present at
  ``t = enc(w)`` iff ``D(w.s)`` accepts.

A direct journey spelling ``w = u.s`` reaches ``acc`` iff the exit edge
is present at ``enc(u)`` iff ``D(w)`` accepts; no other date is ever
reachable without waiting.  The presence functions call ``D`` — they are
computable precisely because the language is, which is the content of
the theorem.

Unlike Figure 1 the general construction is *nondeterministic* (the
continue and exit edges can both be present); the theorem does not ask
for determinism, and the acceptor runs set-of-configurations anyway.
"""

from __future__ import annotations

from repro.automata.tvg_automaton import TVGAutomaton
from repro.constructions.godel import GodelEncoding
from repro.core.latency import function_latency
from repro.core.presence import function_presence
from repro.core.tvg import TimeVaryingGraph
from repro.machines.decider import Decider

START = "start"
READER = "v0"
ACCEPTOR = "acc"


def nowait_graph_for(decider: Decider) -> TimeVaryingGraph:
    """The Theorem 2.1 TVG for the decider's language."""
    encoding = GodelEncoding(decider.alphabet)
    graph = TimeVaryingGraph(name=f"thm2.1({decider.name})")
    graph.add_nodes([START, READER, ACCEPTOR])
    for symbol in decider.alphabet:
        # First symbol: leave the start node, clock 1 -> enc(symbol).
        graph.add_edge(
            START,
            READER,
            label=symbol,
            presence=function_presence(lambda t: t == 1, label="t=1"),
            latency=function_latency(
                lambda t, s=symbol: encoding.extension_latency(t, s),
                label=f"enc({symbol})-1",
            ),
            key=f"first_{symbol}",
        )
        # Subsequent symbols: multiply the clock by the position prime.
        graph.add_edge(
            READER,
            READER,
            label=symbol,
            presence=function_presence(encoding.is_code, label="t is a code"),
            latency=function_latency(
                lambda t, s=symbol: encoding.extension_latency(t, s),
                label=f"enc(w.{symbol})-enc(w)",
            ),
            key=f"loop_{symbol}",
        )
        # Exits: present exactly when the word-so-far extended by the
        # symbol belongs to the language.
        graph.add_edge(
            START,
            ACCEPTOR,
            label=symbol,
            presence=function_presence(
                lambda t, s=symbol: t == 1 and decider(s),
                label=f"t=1 and D({symbol})",
            ),
            key=f"exit0_{symbol}",
        )
        graph.add_edge(
            READER,
            ACCEPTOR,
            label=symbol,
            presence=function_presence(
                lambda t, s=symbol: _exit_present(encoding, decider, t, s),
                label=f"D(w.{symbol}) accepts",
            ),
            key=f"exit_{symbol}",
        )
    return graph


def _exit_present(
    encoding: GodelEncoding, decider: Decider, time: int, symbol: str
) -> bool:
    if time <= 1:
        return False  # t = 1 belongs to the start node's exits
    word = encoding.decode(time)
    if word is None:
        return False
    return decider(word + symbol)


def nowait_automaton_for(decider: Decider) -> TVGAutomaton:
    """The Theorem 2.1 acceptor: ``L_nowait`` equals the decider's language.

    Reading starts at ``t = enc(empty word) = 1``; the start node is also
    accepting iff the language contains the empty word (and no journey
    returns to it, so this decides the empty word only).
    """
    graph = nowait_graph_for(decider)
    accepting = {ACCEPTOR} | ({START} if decider("") else set())
    return TVGAutomaton(graph, initial=START, accepting=accepting, start_time=1)


def clock_after(decider: Decider, word: str) -> int:
    """The date a direct journey holds after reading ``word`` — useful
    for choosing horizons when probing the same graph under waiting."""
    return GodelEncoding(decider.alphabet).encode(word)
