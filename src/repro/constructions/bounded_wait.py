"""Theorem 2.3 — bounded waiting buys nothing: ``L_wait[d] = L_nowait``.

Both class inclusions, constructively:

* ``L_nowait ⊆ L_wait[d]`` via :func:`expand_for_bounded_wait` — the
  paper's *dilatation of time*.  Dilating every schedule by ``d + 1``
  spaces consecutive events ``d + 1`` apart, so a waiting budget of ``d``
  opens no departure a direct journey would not already take:
  ``L_wait[d](dilate(G, d+1)) = L_nowait(dilate(G, d+1)) = L_nowait(G)``.

* ``L_wait[d] ⊆ L_nowait`` via :func:`compile_bounded_wait` — waiting is
  compiled into the graph: node ``v`` splits into copies
  ``(v, 0) ... (v, d)`` chained by unlabeled unit-latency "wait" edges,
  and every labeled edge leaves from all copies but enters copy 0.  A
  direct journey of the compiled graph is exactly a ``wait[d]`` journey
  of the original.  (The compiled graph uses unlabeled edges — the
  library's epsilon extension of the paper's model; the paper itself
  settles the class equality through computability, both classes being
  the computable languages.)
"""

from __future__ import annotations

from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.latency import constant_latency
from repro.core.presence import always
from repro.core.transforms import dilate
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ConstructionError


def expand_for_bounded_wait(
    automaton: TVGAutomaton, max_wait: int
) -> TVGAutomaton:
    """The Theorem 2.3 dilation: a TVG whose ``wait[max_wait]`` language
    equals the input's no-wait language.

    Every presence date ``t`` moves to ``t * (max_wait + 1)`` and every
    latency scales by ``max_wait + 1``; the acceptor's start time scales
    along so that the initial configuration stays on the event grid.
    """
    if max_wait < 0:
        raise ConstructionError(f"waiting bound must be >= 0, got {max_wait}")
    factor = max_wait + 1
    return TVGAutomaton(
        dilate(automaton.graph, factor),
        initial=automaton.initial,
        accepting=automaton.accepting,
        start_time=automaton.start_time * factor,
    )


def compile_bounded_wait(
    automaton: TVGAutomaton, max_wait: int
) -> TVGAutomaton:
    """A TVG whose *no-wait* language equals the input's ``wait[max_wait]``
    language (the converse inclusion, via node splitting).

    Copy ``(v, k)`` means "at ``v``, having waited ``k`` units since
    becoming ready".  Unlabeled edges ``(v, k) -> (v, k+1)`` of unit
    latency realize the pauses; labeled edges keep their schedule, leave
    every copy, and land on copy 0 (taking an edge resets the pause).
    """
    if max_wait < 0:
        raise ConstructionError(f"waiting bound must be >= 0, got {max_wait}")
    source_graph = automaton.graph
    compiled = TimeVaryingGraph(
        lifetime=source_graph.lifetime,
        period=source_graph.period,
        name=f"{source_graph.name}~wait[{max_wait}]-compiled",
    )
    for node in source_graph.nodes:
        for k in range(max_wait + 1):
            compiled.add_node((node, k))
        for k in range(max_wait):
            compiled.add_edge(
                (node, k),
                (node, k + 1),
                label=None,
                presence=always(),
                latency=constant_latency(1),
                key=f"wait:{node}:{k}",
            )
    for edge in source_graph.edges:
        for k in range(max_wait + 1):
            compiled.add_edge(
                (edge.source, k),
                (edge.target, 0),
                label=edge.label,
                presence=edge.presence,
                latency=edge.latency,
                key=f"{edge.key}:{k}",
            )
    return TVGAutomaton(
        compiled,
        initial={(node, 0) for node in automaton.initial},
        accepting={(node, k) for node in automaton.accepting for k in range(max_wait + 1)},
        start_time=automaton.start_time,
    )
