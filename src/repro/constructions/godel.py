"""Word-in-clock prime encodings.

The engine of the no-wait constructions: because latencies may depend on
time arbitrarily, a TVG can *store the entire word read so far in the
current date*.  Table 1 does this for ``a^n b^n`` with two primes (the
clock after ``a^n b^j`` is ``p^n q^j``); the general Theorem 2.1
construction needs an injective encoding of arbitrary words, provided
here by position-indexed primes:

    enc(w) = product over i of  prime(i * |Sigma| + index(w_i))

Unique factorization makes ``enc`` injective and efficiently decodable,
and ``enc(w . s) = enc(w) * prime(len(w) * |Sigma| + index(s))`` means
each symbol is one multiplication — exactly the shape an affine-in-time
latency can realize.
"""

from __future__ import annotations

from functools import lru_cache

from repro.automata.alphabet import Alphabet
from repro.errors import ConstructionError

_PRIME_CACHE: list[int] = [2, 3, 5, 7, 11, 13]


def _extend_primes(minimum_count: int) -> None:
    candidate = _PRIME_CACHE[-1]
    while len(_PRIME_CACHE) < minimum_count:
        candidate += 2
        limit = int(candidate**0.5)
        for p in _PRIME_CACHE:
            if p > limit:
                _PRIME_CACHE.append(candidate)
                break
            if candidate % p == 0:
                break


def primes(count: int) -> list[int]:
    """The first ``count`` primes."""
    if count < 0:
        raise ConstructionError(f"prime count must be >= 0, got {count}")
    _extend_primes(count)
    return _PRIME_CACHE[:count]


def nth_prime(index: int) -> int:
    """The prime with 0-based ``index`` (``nth_prime(0) == 2``)."""
    if index < 0:
        raise ConstructionError(f"prime index must be >= 0, got {index}")
    _extend_primes(index + 1)
    return _PRIME_CACHE[index]


class GodelEncoding:
    """Injective word -> positive-integer encoding over a fixed alphabet.

    >>> enc = GodelEncoding("ab")
    >>> enc.encode("")
    1
    >>> enc.encode("ab")        # prime(0) * prime(3) = 2 * 7
    14
    >>> enc.decode(14)
    'ab'
    """

    def __init__(self, alphabet: Alphabet | str) -> None:
        self.alphabet = (
            alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        )
        self._index = {symbol: i for i, symbol in enumerate(self.alphabet)}

    @property
    def width(self) -> int:
        """Number of primes consumed per word position."""
        return len(self.alphabet)

    def position_prime(self, position: int, symbol: str) -> int:
        """The prime standing for ``symbol`` at ``position``."""
        if symbol not in self._index:
            raise ConstructionError(
                f"symbol {symbol!r} not in alphabet {self.alphabet!r}"
            )
        return nth_prime(position * self.width + self._index[symbol])

    def encode(self, word: str) -> int:
        """``enc(w)`` — the clock value after reading ``w`` from 1."""
        value = 1
        for position, symbol in enumerate(word):
            value *= self.position_prime(position, symbol)
        return value

    def extension_factor(self, word_length: int, symbol: str) -> int:
        """The multiplier appending ``symbol`` to a length-``word_length``
        word: ``enc(w . s) = enc(w) * extension_factor(len(w), s)``."""
        return self.position_prime(word_length, symbol)

    def decode(self, value: int) -> str | None:
        """The word with ``enc(word) == value``, or ``None``.

        Trial-divides by position primes in order; a valid code uses
        exactly one prime from each position block 0..n-1, each once.
        """
        if value < 1:
            return None
        if value == 1:
            return ""
        symbols: list[str] = []
        remaining = value
        position = 0
        ordered = self.alphabet.symbols
        while remaining > 1:
            hit: str | None = None
            for symbol in ordered:
                prime = self.position_prime(position, symbol)
                if remaining % prime == 0:
                    remaining //= prime
                    if remaining % prime == 0:
                        return None  # squared prime: not a code
                    hit = symbol
                    break
            if hit is None:
                return None  # no prime of this position block divides
            symbols.append(hit)
            position += 1
        return "".join(symbols)

    def is_code(self, value: int) -> bool:
        """Whether ``value`` encodes some word."""
        return self.decode(value) is not None

    def extension_latency(self, value: int, symbol: str) -> int:
        """The latency an edge labeled ``symbol`` must have at date
        ``value`` so that the traversal lands on ``enc(w . symbol)``.

        Only meaningful when ``value`` is a code; returns 1 elsewhere
        (the edge will not be present there anyway).
        """
        word = self.decode(value)
        if word is None:
            return 1
        return value * (self.extension_factor(len(word), symbol) - 1)

    def __repr__(self) -> str:
        return f"GodelEncoding({''.join(self.alphabet)!r})"


@lru_cache(maxsize=None)
def shared_encoding(symbols: str) -> GodelEncoding:
    """A cached encoding per alphabet string (constructions share them)."""
    return GodelEncoding(symbols)
