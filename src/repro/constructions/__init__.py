"""The paper's constructive proofs, as executable code.

* :mod:`repro.constructions.figure1` — the exact TVG-automaton of
  Figure 1 / Table 1 whose no-wait language is ``a^n b^n``;
* :mod:`repro.constructions.godel` — word-in-clock prime encodings, the
  arithmetic trick Table 1 is a special case of;
* :mod:`repro.constructions.nowait_universal` — Theorem 2.1: a TVG whose
  no-wait language equals any given computable language;
* :mod:`repro.constructions.wait_regular` — Theorem 2.2 (easy
  direction): every regular language as a wait language;
* :mod:`repro.constructions.bounded_wait` — Theorem 2.3: the time
  dilation making ``wait[d]`` no stronger than no-wait.
"""

from repro.constructions.bounded_wait import (
    compile_bounded_wait,
    expand_for_bounded_wait,
)
from repro.constructions.figure1 import figure1_automaton, figure1_graph
from repro.constructions.godel import GodelEncoding, nth_prime, primes
from repro.constructions.nowait_universal import nowait_automaton_for
from repro.constructions.wait_regular import (
    automaton_to_tvg,
    regex_to_tvg,
)

__all__ = [
    "GodelEncoding",
    "automaton_to_tvg",
    "compile_bounded_wait",
    "expand_for_bounded_wait",
    "figure1_automaton",
    "figure1_graph",
    "nowait_automaton_for",
    "nth_prime",
    "primes",
    "regex_to_tvg",
]
