"""Theorem 2.2, constructive direction — regular languages are wait languages.

Every regular language is ``L_wait(G)`` for some TVG ``G``: take any NFA
for it and read the NFA *as* a TVG with always-present unit-latency
edges.  On a static graph waiting changes nothing, so
``L_wait = L_nowait = L(NFA)``.

The more interesting witness is the *strict* embedding: the same edges
present only at even dates.  With unit latencies every arrival lands on
an odd date, so a direct journey can never take a second edge — the
no-wait language collapses to the length-<=1 words — while waiting one
unit recovers the full regular language.  One graph thus separates the
two semantics as far as they can be separated within the regular world,
and both of its languages are verified exactly by extraction (the graph
is periodic with period 2).
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.presence import always, periodic_presence
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ConstructionError


def automaton_to_tvg(
    automaton: DFA | NFA, strict: bool = False
) -> TVGAutomaton:
    """Embed a finite automaton as a TVG-automaton.

    ``strict=False``: edges always present — ``L_wait = L_nowait = L``.
    ``strict=True``: edges present at even dates only — ``L_wait = L``
    but ``L_nowait`` collapses (see module docstring).

    Epsilon transitions of an NFA become unlabeled TVG edges, which the
    acceptor and the extractor both treat as input-free moves.
    """
    nfa = automaton.to_nfa() if isinstance(automaton, DFA) else automaton
    graph = TimeVaryingGraph(
        period=2 if strict else 1,
        name="regular-embedding" + ("-strict" if strict else ""),
    )
    presence = periodic_presence([0], 2) if strict else always()
    node_of = {state: f"s{i}" for i, state in enumerate(sorted(nfa.states, key=repr))}
    graph.add_nodes(node_of.values())
    index = 0
    for (state, symbol), targets in nfa.transitions.items():
        for target in sorted(targets, key=repr):
            graph.add_edge(
                node_of[state],
                node_of[target],
                label=symbol,
                presence=presence,
                key=f"t{index}",
            )
            index += 1
    if not graph.alphabet:
        raise ConstructionError(
            "the automaton has no labeled transitions; its language is "
            "trivial and the embedding would have no alphabet"
        )
    return TVGAutomaton(
        graph,
        initial={node_of[s] for s in nfa.initial},
        accepting={node_of[s] for s in nfa.accepting},
        start_time=0,
    )


def regex_to_tvg(pattern: str, strict: bool = False) -> TVGAutomaton:
    """Regex -> Thompson NFA -> TVG embedding, in one call."""
    from repro.automata.regex import regex_to_nfa

    return automaton_to_tvg(regex_to_nfa(pattern), strict=strict)
