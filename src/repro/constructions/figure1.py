"""Figure 1 / Table 1 of the paper, verbatim.

The deterministic TVG-automaton whose *no-wait* language is the
context-free ``{a^n b^n : n >= 1}``.  Three nodes ``v0`` (initial),
``v1``, ``v2`` (accepting); reading starts at ``t = 1``; ``p < q`` are
distinct primes > 1.  The schedules, straight from Table 1:

====  ==========  =====  ===============================  ==============
edge  endpoints   label  presence ``rho(e, t) = 1`` iff    latency
====  ==========  =====  ===============================  ==============
e0    v0 -> v0    a      always                            ``(p - 1) t``
e1    v0 -> v1    b      ``t > p``                         ``(q - 1) t``
e2    v1 -> v1    b      ``t != p^i q^(i-1), i > 1``       ``(q - 1) t``
e3    v0 -> v2    b      ``t = p``                         any (1 here)
e4    v1 -> v2    b      ``t = p^i q^(i-1), i > 1``        any (1 here)
====  ==========  =====  ===============================  ==============

Mechanics: the clock after reading ``a^n`` is ``p^n`` (e0 multiplies by
``p``), after ``a^n b^j`` it is ``p^n q^j`` (e1/e2 multiply by ``q``).
The final ``b`` must exit to ``v2``: via ``e3`` when ``n = 1`` (clock
exactly ``p``), via ``e4`` when the clock is ``p^n q^(n-1)`` — i.e.
after exactly ``n - 1`` earlier ``b``s.  ``e2`` is switched *off* at
those dates, which is what makes the automaton deterministic.
"""

from __future__ import annotations

from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.latency import affine_latency, constant_latency
from repro.core.presence import always, function_presence
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ConstructionError

#: Default primes from the paper's "two distinct prime numbers > 1".
DEFAULT_P = 2
DEFAULT_Q = 3


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    return all(n % k for k in range(2, int(n**0.5) + 1))


def is_pq_power(t: int, p: int, q: int) -> bool:
    """Whether ``t = p^i q^(i-1)`` for some ``i > 1``.

    These are the dates at which ``e4`` (the accepting exit for
    ``n >= 2``) is present and ``e2`` (the ``b`` self-loop) is absent.
    """
    if t <= 0:
        return False
    value = p * p * q  # i = 2
    while value <= t:
        if value == t:
            return True
        value *= p * q  # i -> i + 1 multiplies by p*q
    return False


def figure1_graph(p: int = DEFAULT_P, q: int = DEFAULT_Q) -> TimeVaryingGraph:
    """The Table 1 time-varying graph, exactly as published."""
    if p == q or not _is_prime(p) or not _is_prime(q) or p <= 1 or q <= 1:
        raise ConstructionError(
            f"p and q must be distinct primes greater than 1, got p={p}, q={q}"
        )
    graph = TimeVaryingGraph(name=f"figure1(p={p},q={q})")
    graph.add_nodes(["v0", "v1", "v2"])
    graph.add_edge(
        "v0",
        "v0",
        label="a",
        presence=always(),
        latency=affine_latency(p - 1),
        key="e0",
    )
    graph.add_edge(
        "v0",
        "v1",
        label="b",
        presence=function_presence(lambda t: t > p, label=f"t>{p}"),
        latency=affine_latency(q - 1),
        key="e1",
    )
    graph.add_edge(
        "v1",
        "v1",
        label="b",
        presence=function_presence(
            lambda t: not is_pq_power(t, p, q), label=f"t!={p}^i{q}^(i-1)"
        ),
        latency=affine_latency(q - 1),
        key="e2",
    )
    graph.add_edge(
        "v0",
        "v2",
        label="b",
        presence=function_presence(lambda t: t == p, label=f"t={p}"),
        latency=constant_latency(1),
        key="e3",
    )
    graph.add_edge(
        "v1",
        "v2",
        label="b",
        presence=function_presence(
            lambda t: is_pq_power(t, p, q), label=f"t={p}^i{q}^(i-1)"
        ),
        latency=constant_latency(1),
        key="e4",
    )
    return graph


def figure1_automaton(p: int = DEFAULT_P, q: int = DEFAULT_Q) -> TVGAutomaton:
    """The Figure 1 acceptor: initial ``v0``, accepting ``v2``, start 1."""
    return TVGAutomaton(
        figure1_graph(p, q), initial="v0", accepting="v2", start_time=1
    )


def figure1_clock(word: str, p: int = DEFAULT_P, q: int = DEFAULT_Q) -> int:
    """The clock value a direct journey holds after reading ``word``.

    ``a^n b^j`` maps to ``p^n q^j`` starting from 1 — the two-prime
    special case of the Gödel clock; exposed for tests and examples.
    """
    value = 1
    for symbol in word:
        value *= p if symbol == "a" else q
    return value


def figure1_wait_language_description(max_n: int = 4) -> str:
    """The regex we *derive* (the paper does not state it) for
    ``L_wait`` of the Figure 1 graph — see EXPERIMENTS.md, E1.

    With waiting allowed the prime clockwork is defeated: any number of
    ``a``s may precede any ``n >= 2`` run of ``b``s (wait for ``e1``,
    loop ``e2`` off the forbidden dates, wait for ``e4``), while a single
    ``b`` exit only survives through ``e3`` at date exactly ``p``, i.e.
    for at most one leading ``a``.
    """
    return "(a*bbb*)|(ab)|(b)"
