"""Automata and formal-language toolkit.

Two layers live here:

* a classical substrate — DFA/NFA, regular expressions, boolean
  operations, Hopcroft minimization, equivalence checking — built from
  scratch because Theorem 2.2 identifies ``L_wait`` with the *regular*
  languages and we need that comparator class as executable code; and

* the paper's object of study — the :class:`TVGAutomaton` reading words
  along journeys of a time-varying graph, together with the
  wait-language extractor that turns periodic/finite TVGs into honest
  finite automata.
"""

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.enumeration import (
    count_words_by_length,
    enumerate_language,
    language_upto,
)
from repro.automata.equivalence import equivalent, find_distinguishing_word, is_subset
from repro.automata.grammars import (
    ContextFreeGrammar,
    cfg_anbn,
    cfg_balanced,
    cfg_palindromes,
)
from repro.automata.language_compute import (
    bounded_wait_language_automaton,
    count_words,
    nowait_language_automaton,
    wait_language_automaton,
)
from repro.automata.nfa import NFA
from repro.automata.operations import (
    complement,
    complete,
    difference,
    intersect,
    minimize,
    reverse_dfa,
    union,
)
from repro.automata.pumping import (
    find_pumping_counterexample,
    refuted_state_bound,
    regularity_refutation_ladder,
)
from repro.automata.regex import parse_regex, regex_to_nfa
from repro.automata.tvg_automaton import TVGAutomaton
from repro.automata.wqo import (
    downward_closure,
    is_subword,
    upward_closure,
)

__all__ = [
    "Alphabet",
    "ContextFreeGrammar",
    "DFA",
    "NFA",
    "TVGAutomaton",
    "cfg_anbn",
    "cfg_balanced",
    "cfg_palindromes",
    "find_pumping_counterexample",
    "refuted_state_bound",
    "regularity_refutation_ladder",
    "bounded_wait_language_automaton",
    "complement",
    "complete",
    "count_words",
    "count_words_by_length",
    "difference",
    "downward_closure",
    "enumerate_language",
    "equivalent",
    "find_distinguishing_word",
    "intersect",
    "is_subset",
    "is_subword",
    "language_upto",
    "minimize",
    "nowait_language_automaton",
    "parse_regex",
    "regex_to_nfa",
    "reverse_dfa",
    "union",
    "upward_closure",
    "wait_language_automaton",
]
