"""Brzozowski derivatives: a second, independent regex engine.

The derivative of a language by a symbol, computed syntactically on the
regex AST.  Membership by repeated derivation needs no automaton at
all, and the set of derivatives (modulo the similarity rules) is finite,
giving a *direct* DFA construction.

Why a second engine: the Theorem 2.2 benchmarks lean on the
Thompson/subset pipeline; the derivative engine shares no code with it,
so agreement between the two on random regexes is a strong correctness
check for both — the classic N-version trick, used by the property
suite.
"""

from __future__ import annotations

from typing import Iterator

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.regex import (
    Concat,
    Epsilon,
    Literal,
    RegexNode,
    Star,
    Union,
    parse_regex,
)
from repro.errors import AutomatonError


class _Empty(RegexNode):
    """The empty *language* (matches nothing) — internal to derivatives."""

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Empty)

    def __hash__(self) -> int:
        return hash("_Empty")

    def __str__(self) -> str:
        return "∅"


EMPTY = _Empty()


def nullable(node: RegexNode) -> bool:
    """Whether the language of ``node`` contains the empty word."""
    if isinstance(node, _Empty):
        return False
    if isinstance(node, Epsilon):
        return True
    if isinstance(node, Literal):
        return False
    if isinstance(node, Concat):
        return nullable(node.left) and nullable(node.right)
    if isinstance(node, Union):
        return nullable(node.left) or nullable(node.right)
    if isinstance(node, Star):
        return True
    raise AutomatonError(f"unknown regex node {node!r}")


def _union_alternatives(node: RegexNode) -> Iterator[RegexNode]:
    """Flatten nested unions into their leaf alternatives."""
    if isinstance(node, Union):
        yield from _union_alternatives(node.left)
        yield from _union_alternatives(node.right)
    else:
        yield node


def _smart_union(left: RegexNode, right: RegexNode) -> RegexNode:
    """Union normalized modulo ACI, keeping derivative sets finite.

    Brzozowski's finiteness theorem holds for derivatives *modulo
    associativity, commutativity, and idempotence* of union.  Checking
    only ``left == right`` is not enough: deriving ``(a|b)*(b*|aa)`` by
    ``b`` repeatedly piles up ``((R|b*)|b*)|b*...`` forever.  So unions
    are flattened, deduplicated, sorted into a canonical order, and
    rebuilt right-nested — structurally equal whenever ACI-equal.  The
    sort key must be injective over AST *structure*: ``str`` is not
    (``(ab)c`` and ``a(bc)`` can both print ``abc``), so ties would
    rebuild in encounter order and reopen the growth; the dataclass
    ``repr`` spells out the full tree.
    """
    alternatives: list[RegexNode] = []
    seen: set[RegexNode] = set()
    for alt in (*_union_alternatives(left), *_union_alternatives(right)):
        if isinstance(alt, _Empty) or alt in seen:
            continue
        seen.add(alt)
        alternatives.append(alt)
    if not alternatives:
        return EMPTY
    alternatives.sort(key=repr)
    result = alternatives[-1]
    for alt in reversed(alternatives[:-1]):
        result = Union(alt, result)
    return result


def _smart_concat(left: RegexNode, right: RegexNode) -> RegexNode:
    if isinstance(left, _Empty) or isinstance(right, _Empty):
        return EMPTY
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    return Concat(left, right)


def derivative(node: RegexNode, symbol: str) -> RegexNode:
    """Brzozowski derivative: the language ``{w : symbol . w in L}``."""
    if isinstance(node, (_Empty, Epsilon)):
        return EMPTY
    if isinstance(node, Literal):
        return Epsilon() if node.symbol == symbol else EMPTY
    if isinstance(node, Union):
        return _smart_union(derivative(node.left, symbol), derivative(node.right, symbol))
    if isinstance(node, Concat):
        first = _smart_concat(derivative(node.left, symbol), node.right)
        if nullable(node.left):
            return _smart_union(first, derivative(node.right, symbol))
        return first
    if isinstance(node, Star):
        return _smart_concat(derivative(node.inner, symbol), node)
    raise AutomatonError(f"unknown regex node {node!r}")


def matches(pattern: str | RegexNode, word: str) -> bool:
    """Membership by repeated derivation — no automaton built."""
    node = parse_regex(pattern) if isinstance(pattern, str) else pattern
    for symbol in word:
        node = derivative(node, symbol)
        if isinstance(node, _Empty):
            return False
    return nullable(node)


def derivative_dfa(
    pattern: str | RegexNode, alphabet: Alphabet | str | None = None
) -> DFA:
    """The DFA whose states are the (similarity-reduced) derivatives.

    Brzozowski's theorem promises finitely many dissimilar derivatives;
    the smart constructors above implement enough similarity for that
    bound to hold in practice, and a hard cap turns any escape into an
    explicit error rather than a hang.
    """
    node = parse_regex(pattern) if isinstance(pattern, str) else pattern
    if alphabet is None:
        symbols = sorted(node.symbols())
        if not symbols:
            symbols = ["a"]
        sigma = Alphabet(symbols)
    else:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    states: dict[RegexNode, int] = {node: 0}
    transitions: dict[tuple[int, str], int] = {}
    frontier = [node]
    cap = 10_000
    while frontier:
        current = frontier.pop()
        for symbol in sigma:
            next_node = derivative(current, symbol)
            if isinstance(next_node, _Empty):
                continue  # dead state stays implicit
            if next_node not in states:
                if len(states) >= cap:
                    raise AutomatonError(
                        "derivative explosion: similarity rules insufficient "
                        f"for this pattern (>{cap} states)"
                    )
                states[next_node] = len(states)
                frontier.append(next_node)
            transitions[(states[current], symbol)] = states[next_node]
    accepting = {index for expr, index in states.items() if nullable(expr)}
    return DFA(
        alphabet=sigma,
        states=set(states.values()),
        initial=0,
        accepting=accepting,
        transitions=transitions,
    )
