"""Deterministic finite automata.

States are arbitrary hashable objects.  Transition functions may be
partial — a missing transition is an implicit dead state — which keeps
hand-written examples readable; :func:`repro.automata.operations.complete`
totalizes when an operation (complement) requires it.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.automata.alphabet import Alphabet
from repro.errors import AutomatonError

State = Hashable


class DFA:
    """A (possibly partial) deterministic finite automaton."""

    def __init__(
        self,
        alphabet: Alphabet | str,
        states: Iterable[State],
        initial: State,
        accepting: Iterable[State],
        transitions: Mapping[tuple[State, str], State],
    ) -> None:
        self.alphabet = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        self.states = frozenset(states)
        self.initial = initial
        self.accepting = frozenset(accepting)
        self.transitions = dict(transitions)
        self._validate()

    def _validate(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError(f"initial state {self.initial!r} not a state")
        stray = self.accepting - self.states
        if stray:
            raise AutomatonError(f"accepting states {stray!r} are not states")
        for (state, symbol), target in self.transitions.items():
            if state not in self.states:
                raise AutomatonError(f"transition from unknown state {state!r}")
            if target not in self.states:
                raise AutomatonError(f"transition to unknown state {target!r}")
            if symbol not in self.alphabet:
                raise AutomatonError(
                    f"transition on symbol {symbol!r} outside the alphabet"
                )

    # -- running ------------------------------------------------------------------

    def step(self, state: State, symbol: str) -> State | None:
        """One transition; ``None`` means the implicit dead state."""
        return self.transitions.get((state, symbol))

    def run(self, word: str) -> State | None:
        """The state reached from the initial state, or ``None`` if the
        run dies on a missing transition."""
        self.alphabet.validate_word(word)
        state: State | None = self.initial
        for symbol in word:
            if state is None:
                return None
            state = self.step(state, symbol)
        return state

    def accepts(self, word: str) -> bool:
        """Whether the DFA accepts ``word``."""
        state = self.run(word)
        return state is not None and state in self.accepting

    # -- structure ------------------------------------------------------------------

    @property
    def is_total(self) -> bool:
        """Whether every (state, symbol) pair has a transition."""
        return all(
            (state, symbol) in self.transitions
            for state in self.states
            for symbol in self.alphabet
        )

    def reachable_states(self) -> frozenset[State]:
        """States reachable from the initial state."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for symbol in self.alphabet:
                target = self.step(state, symbol)
                if target is not None and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def trim(self) -> "DFA":
        """The sub-automaton on reachable states."""
        keep = self.reachable_states()
        return DFA(
            alphabet=self.alphabet,
            states=keep,
            initial=self.initial,
            accepting=self.accepting & keep,
            transitions={
                (s, a): t
                for (s, a), t in self.transitions.items()
                if s in keep and t in keep
            },
        )

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return not (self.reachable_states() & self.accepting)

    def renumbered(self) -> "DFA":
        """An isomorphic DFA with canonical integer states (BFS order).

        Canonical numbering makes minimized DFAs directly comparable.
        """
        order: dict[State, int] = {self.initial: 0}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop(0)
            for symbol in self.alphabet:
                target = self.step(state, symbol)
                if target is not None and target not in order:
                    order[target] = len(order)
                    frontier.append(target)
        # Unreachable states keep arbitrary (but deterministic) numbers.
        for state in sorted(self.states - set(order), key=repr):
            order[state] = len(order)
        return DFA(
            alphabet=self.alphabet,
            states=range(len(order)),
            initial=0,
            accepting={order[s] for s in self.accepting},
            transitions={
                (order[s], a): order[t] for (s, a), t in self.transitions.items()
            },
        )

    def to_nfa(self):
        """The same language as an :class:`repro.automata.nfa.NFA`."""
        from repro.automata.nfa import NFA

        delta: dict[tuple[State, str | None], frozenset[State]] = {}
        for (state, symbol), target in self.transitions.items():
            delta[(state, symbol)] = frozenset({target})
        return NFA(
            alphabet=self.alphabet,
            states=self.states,
            initial={self.initial},
            accepting=self.accepting,
            transitions=delta,
        )

    def __repr__(self) -> str:
        return (
            f"DFA(|Q|={len(self.states)}, Sigma={''.join(self.alphabet)!r}, "
            f"|F|={len(self.accepting)}, total={self.is_total})"
        )
