"""Passive DFA learning (RPNI) from labeled samples.

A third regularity instrument, independent of extraction and of the
Myhill–Nerode/pumping bounds: given positive and negative word samples,
RPNI (Oncina & García, 1992) builds the prefix-tree acceptor and greedily
merges states in canonical order whenever the merge stays consistent
with the sample.

How it meets the paper: sample a TVG language under *wait* semantics,
learn, and the result converges to the minimal DFA as depth grows
(Theorem 2.2 in action — for periodic graphs the tests check the learned
machine against the exact extracted one).  Sample under *no-wait* on a
clockwork graph and the learned machines keep growing with the sample:
learning never converges because there is nothing finite to converge to.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.errors import AutomatonError

_ACCEPT = 1
_REJECT = 0
_UNKNOWN = -1


class _PrefixTree:
    """Mutable prefix-tree acceptor with merge-by-fold."""

    def __init__(self, alphabet: Alphabet) -> None:
        self.alphabet = alphabet
        self.children: list[dict[str, int]] = [{}]
        self.verdict: list[int] = [_UNKNOWN]

    def add(self, word: str, accepted: bool) -> None:
        node = 0
        for symbol in word:
            if symbol not in self.children[node]:
                self.children[node][symbol] = len(self.children)
                self.children.append({})
                self.verdict.append(_UNKNOWN)
            node = self.children[node][symbol]
        wanted = _ACCEPT if accepted else _REJECT
        if self.verdict[node] not in (_UNKNOWN, wanted):
            raise AutomatonError(
                f"sample is contradictory on {word!r} (both accepted and rejected)"
            )
        self.verdict[node] = wanted


def _try_merge(
    children: list[dict[str, int]],
    verdict: list[int],
    representative: list[int],
    keep: int,
    drop: int,
) -> bool:
    """Attempt to merge state ``drop`` into ``keep`` (with folding);
    mutates the three structures, returns False (leaving them in a
    partially-merged state — callers work on copies) on inconsistency."""
    keep = _find(representative, keep)
    drop = _find(representative, drop)
    if keep == drop:
        return True
    a, b = verdict[keep], verdict[drop]
    if a != _UNKNOWN and b != _UNKNOWN and a != b:
        return False
    if a == _UNKNOWN:
        verdict[keep] = b
    representative[drop] = keep
    for symbol, target in list(children[drop].items()):
        if symbol in children[keep]:
            if not _try_merge(
                children, verdict, representative, children[keep][symbol], target
            ):
                return False
        else:
            children[keep][symbol] = target
    return True


def _find(representative: list[int], node: int) -> int:
    while representative[node] != node:
        node = representative[node]
    return node


def learn_dfa(
    positive: Iterable[str],
    negative: Iterable[str],
    alphabet: Alphabet | str,
) -> DFA:
    """RPNI: the canonical-order merged DFA consistent with the sample.

    Every positive word is accepted and every negative word rejected by
    the result (guaranteed); on characteristic samples the result is the
    target's minimal DFA.  States unreachable after merging are dropped;
    missing transitions reject (partial DFA).
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    tree = _PrefixTree(sigma)
    for word in sorted(set(positive), key=lambda w: (len(w), w)):
        tree.add(sigma.validate_word(word), True)
    for word in sorted(set(negative), key=lambda w: (len(w), w)):
        tree.add(sigma.validate_word(word), False)

    children = [dict(c) for c in tree.children]
    verdict = list(tree.verdict)
    representative = list(range(len(children)))

    # Canonical (breadth-first) order over tree nodes.
    order: list[int] = [0]
    cursor = 0
    while cursor < len(order):
        node = order[cursor]
        cursor += 1
        for symbol in sigma:
            if symbol in tree.children[node]:
                order.append(tree.children[node][symbol])

    red: list[int] = [0]
    for candidate in order[1:]:
        if _find(representative, candidate) != candidate:
            continue  # already folded into an earlier state
        merged = False
        for target in red:
            trial_children = [dict(c) for c in children]
            trial_verdict = list(verdict)
            trial_repr = list(representative)
            if _try_merge(trial_children, trial_verdict, trial_repr, target, candidate):
                children, verdict, representative = (
                    trial_children,
                    trial_verdict,
                    trial_repr,
                )
                merged = True
                break
        if not merged:
            red.append(candidate)

    # Materialize the quotient automaton on the red states.
    transitions: dict[tuple[int, str], int] = {}
    states: set[int] = set()
    frontier = [_find(representative, 0)]
    while frontier:
        node = frontier.pop()
        if node in states:
            continue
        states.add(node)
        for symbol, target in children[node].items():
            root = _find(representative, target)
            transitions[(node, symbol)] = root
            if root not in states:
                frontier.append(root)
    accepting = {s for s in states if verdict[s] == _ACCEPT}
    return DFA(
        alphabet=sigma,
        states=states,
        initial=_find(representative, 0),
        accepting=accepting,
        transitions=transitions,
    ).renumbered()


def learn_from_language_sample(
    sample: Iterable[str],
    alphabet: Alphabet | str,
    max_length: int,
) -> DFA:
    """Learn from a complete sample: everything up to ``max_length`` not
    in ``sample`` is a negative example."""
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    accepted = set(sample)
    rejected = [w for w in sigma.words_upto(max_length) if w not in accepted]
    return learn_dfa(accepted, rejected, sigma)
