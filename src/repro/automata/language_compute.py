"""Extraction of waiting languages as finite automata.

Theorem 2.2 says ``L_wait`` is exactly the regular languages.  For two
large, decidable classes of TVGs this reproduction makes the regularity
*constructive* — it outputs an actual NFA:

* **periodic TVGs** (presence and latency repeat with period ``P``):
  configurations ``(node, t)`` and ``(node, t + P)`` behave identically,
  so the automaton needs only ``(node, residue)`` states.  Waiting one
  time unit becomes an epsilon move ``(v, r) -> (v, r+1 mod P)``, and an
  ``a``-labeled edge present at residue ``r`` with latency ``l`` becomes
  ``(u, r) --a--> (v, (r + l) mod P)``.  Every automaton path lifts to a
  genuine journey because each move strictly advances real time.

* **finite-lifetime TVGs**: the classic time-expansion with one state per
  ``(node, date)``.

The same expansions with the epsilon moves removed (or budgeted) compute
``L_nowait`` and ``L_wait[d]``.  A pleasant corollary falls out and is
tested: the *no-wait* language of any periodic TVG is also regular — the
Turing power of Theorem 2.1 genuinely needs aperiodic schedules like the
prime-power clocks of Table 1.
"""

from __future__ import annotations

from typing import Hashable

from repro.automata.alphabet import Alphabet
from repro.automata.nfa import NFA
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.intervals import Interval
from repro.core.semantics import NO_WAIT, WAIT, WaitingSemantics
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ExtractionError


def verify_period(graph: TimeVaryingGraph, periods_checked: int = 2) -> bool:
    """Spot-check the declared period against actual schedules.

    Compares presence over ``[0, P)`` with the next ``periods_checked``
    windows, and latency at each present date.  A sampling check — a
    pathological black-box schedule could still lie — but it catches every
    honest mistake (wrong period, shifted pattern, drifting latency).
    """
    period = graph.period
    if period is None:
        raise ExtractionError("graph declares no period")
    for edge in graph.edges:
        base = set(edge.presence.support(Interval(0, period)).times())
        for k in range(1, periods_checked + 1):
            window = Interval(k * period, (k + 1) * period)
            shifted = {t - k * period for t in edge.presence.support(window).times()}
            if shifted != base:
                return False
            for residue in base:
                if edge.latency(residue) != edge.latency(residue + k * period):
                    return False
    return True


def _alphabet_of(automaton: TVGAutomaton) -> Alphabet:
    labels = sorted(automaton.graph.alphabet)
    if not labels:
        raise ExtractionError("the graph has no labeled edges; no language to extract")
    return Alphabet(labels)


# -- periodic expansion ----------------------------------------------------------------


def _periodic_expansion(
    automaton: TVGAutomaton,
    wait_budget: int | None,
    check_period: bool,
) -> NFA:
    """Shared body of the three periodic extractors.

    ``wait_budget``: ``None`` for unbounded waiting, 0 for no waiting,
    ``d`` for ``wait[d]``.  States are ``(node, residue)`` when the budget
    is unbounded or zero, and ``(node, residue, waited)`` otherwise.
    """
    graph = automaton.graph
    period = graph.period
    if period is None:
        raise ExtractionError(
            "periodic extraction requires a declared period "
            "(set TimeVaryingGraph(period=...) or use the finite-lifetime path)"
        )
    if check_period and not verify_period(graph):
        raise ExtractionError(
            f"declared period {period} contradicts the actual schedules"
        )
    sigma = _alphabet_of(automaton)
    track_wait = wait_budget is not None and wait_budget > 0

    def state(node: Hashable, residue: int, waited: int) -> tuple:
        if track_wait:
            return (node, residue, waited)
        return (node, residue)

    budget = wait_budget if track_wait else 0
    states = {
        state(node, residue, waited)
        for node in graph.nodes
        for residue in range(period)
        for waited in range(budget + 1)
    }
    transitions: dict[tuple[tuple, str | None], set[tuple]] = {}

    def arrow(source: tuple, symbol: str | None, target: tuple) -> None:
        transitions.setdefault((source, symbol), set()).add(target)

    for node in graph.nodes:
        for residue in range(period):
            # Waiting one unit: an epsilon move that advances the clock.
            if wait_budget is None:
                arrow(state(node, residue, 0), None, state(node, (residue + 1) % period, 0))
            elif track_wait:
                for waited in range(budget):
                    arrow(
                        state(node, residue, waited),
                        None,
                        state(node, (residue + 1) % period, waited + 1),
                    )
    for edge in graph.edges:
        for residue in edge.presence.support(Interval(0, period)).times():
            arrival = (residue + edge.latency(residue)) % period
            for waited in range(budget + 1):
                # Taking an edge resets the waiting budget.
                arrow(
                    state(edge.source, residue, waited),
                    edge.label,
                    state(edge.target, arrival, 0),
                )

    start_residue = automaton.start_time % period
    initial = {state(node, start_residue, 0) for node in automaton.initial}
    accepting = {
        state(node, residue, waited)
        for node in automaton.accepting
        for residue in range(period)
        for waited in range(budget + 1)
    }
    return NFA(
        alphabet=sigma,
        states=states,
        initial=initial,
        accepting=accepting,
        transitions=transitions,
    )


# -- finite-lifetime expansion ----------------------------------------------------------


def _finite_expansion(automaton: TVGAutomaton, wait_budget: int | None) -> NFA:
    """Time-expanded NFA over ``(node, date)`` states for bounded lifetimes.

    Dates run over ``[start, end]``; ``end`` is a sink date (no presence
    beyond the lifetime), and arrivals past it are clamped there.  The
    waiting budget, when finite, is tracked in the state.
    """
    graph = automaton.graph
    if not graph.lifetime.bounded:
        raise ExtractionError(
            "finite-lifetime extraction requires a bounded lifetime "
            "(set Lifetime(start, end)); for unbounded graphs declare a period"
        )
    start, end = graph.lifetime.start, int(graph.lifetime.end)
    sigma = _alphabet_of(automaton)
    track_wait = wait_budget is not None and wait_budget > 0
    budget = wait_budget if track_wait else 0

    def state(node: Hashable, date: int, waited: int) -> tuple:
        if track_wait:
            return (node, date, waited)
        return (node, date)

    states = {
        state(node, date, waited)
        for node in graph.nodes
        for date in range(start, end + 1)
        for waited in range(budget + 1)
    }
    transitions: dict[tuple[tuple, str | None], set[tuple]] = {}

    def arrow(source: tuple, symbol: str | None, target: tuple) -> None:
        transitions.setdefault((source, symbol), set()).add(target)

    for node in graph.nodes:
        for date in range(start, end):
            if wait_budget is None:
                arrow(state(node, date, 0), None, state(node, date + 1, 0))
            elif track_wait:
                for waited in range(budget):
                    arrow(
                        state(node, date, waited),
                        None,
                        state(node, date + 1, waited + 1),
                    )
    window = Interval(start, end)
    for edge in graph.edges:
        for date in edge.presence.support(window).times():
            arrival = min(date + edge.latency(date), end)
            for waited in range(budget + 1):
                arrow(
                    state(edge.source, date, waited),
                    edge.label,
                    state(edge.target, arrival, 0),
                )

    clamp = min(max(automaton.start_time, start), end)
    initial = {state(node, clamp, 0) for node in automaton.initial}
    accepting = {
        state(node, date, waited)
        for node in automaton.accepting
        for date in range(start, end + 1)
        for waited in range(budget + 1)
    }
    return NFA(
        alphabet=sigma,
        states=states,
        initial=initial,
        accepting=accepting,
        transitions=transitions,
    )


# -- public API -------------------------------------------------------------------------


def _dispatch(
    automaton: TVGAutomaton, wait_budget: int | None, check_period: bool
) -> NFA:
    if automaton.graph.period is not None:
        return _periodic_expansion(automaton, wait_budget, check_period)
    return _finite_expansion(automaton, wait_budget)


def wait_language_automaton(
    automaton: TVGAutomaton, check_period: bool = True
) -> NFA:
    """An NFA recognizing ``L_wait(G)`` exactly.

    Works for periodic graphs (``(node, residue)`` states plus wait
    epsilon moves) and finite-lifetime graphs (``(node, date)`` states).
    This is the constructive face of Theorem 2.2 on these classes.
    """
    return _dispatch(automaton, None, check_period)


def nowait_language_automaton(
    automaton: TVGAutomaton, check_period: bool = True
) -> NFA:
    """An NFA recognizing ``L_nowait(G)`` exactly — same expansions with
    the wait moves removed.

    Only exists for periodic / finite-lifetime graphs; over arbitrary
    TVGs ``L_nowait`` reaches every computable language (Theorem 2.1), so
    no such extractor can exist in general.
    """
    return _dispatch(automaton, 0, check_period)


def bounded_wait_language_automaton(
    automaton: TVGAutomaton, max_wait: int, check_period: bool = True
) -> NFA:
    """An NFA recognizing ``L_wait[d](G)`` exactly, ``d = max_wait``.

    The waiting budget is carried in the state and reset by every edge,
    mirroring the paper's per-pause bound.
    """
    if max_wait < 0:
        raise ExtractionError(f"waiting bound must be >= 0, got {max_wait}")
    return _dispatch(automaton, max_wait, check_period)


def language_automaton(
    automaton: TVGAutomaton,
    semantics: WaitingSemantics,
    check_period: bool = True,
) -> NFA:
    """Dispatch on a :class:`WaitingSemantics` value."""
    if semantics == WAIT:
        return wait_language_automaton(automaton, check_period)
    if semantics == NO_WAIT:
        return nowait_language_automaton(automaton, check_period)
    assert semantics.max_wait is not None
    return bounded_wait_language_automaton(automaton, semantics.max_wait, check_period)


def count_words(
    graph: TimeVaryingGraph,
    source: Hashable,
    start_time: int,
    accepting: set[Hashable],
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
    max_length: int = 8,
) -> list[int]:
    """``result[n]`` = number of distinct length-``n`` words spelled by
    feasible journeys from the source ending in ``accepting``.

    Word-level (not journey-level) counting: distinct journeys spelling
    the same word count once.  Runs the configuration-set construction
    per word, so cost is proportional to the number of live words.
    """
    automaton = TVGAutomaton(
        graph, initial=source, accepting=accepting, start_time=start_time
    )
    sample = automaton.language(max_length, semantics, horizon)
    counts = [0] * (max_length + 1)
    for word in sample:
        counts[len(word)] += 1
    return counts
