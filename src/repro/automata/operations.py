"""Boolean operations and minimization on finite automata.

Everything Theorem 2.2's verification pipeline needs: completion,
complement, product intersection/union, difference, Hopcroft
minimization, and DFA reversal (via the NFA construction).
"""

from __future__ import annotations

from typing import Hashable

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.errors import AutomatonError

State = Hashable

#: Sentinel dead state added by :func:`complete`.
DEAD = "__dead__"


def _common_alphabet(first: DFA, second: DFA) -> Alphabet:
    if first.alphabet != second.alphabet:
        raise AutomatonError(
            f"alphabet mismatch: {first.alphabet!r} vs {second.alphabet!r}; "
            "rebuild one side over the merged alphabet first"
        )
    return first.alphabet


def complete(dfa: DFA) -> DFA:
    """A total DFA for the same language (adds a dead sink if needed)."""
    if dfa.is_total:
        return dfa
    states = set(dfa.states) | {DEAD}
    transitions = dict(dfa.transitions)
    for state in states:
        for symbol in dfa.alphabet:
            transitions.setdefault((state, symbol), DEAD)
    return DFA(
        alphabet=dfa.alphabet,
        states=states,
        initial=dfa.initial,
        accepting=dfa.accepting,
        transitions=transitions,
    )


def complement(dfa: DFA) -> DFA:
    """The DFA for the complement language (over the same alphabet)."""
    total = complete(dfa)
    return DFA(
        alphabet=total.alphabet,
        states=total.states,
        initial=total.initial,
        accepting=total.states - total.accepting,
        transitions=total.transitions,
    )


def _product(first: DFA, second: DFA, accept) -> DFA:
    alphabet = _common_alphabet(first, second)
    a, b = complete(first), complete(second)
    start = (a.initial, b.initial)
    states = {start}
    transitions: dict[tuple[tuple[State, State], str], tuple[State, State]] = {}
    frontier = [start]
    while frontier:
        pair = frontier.pop()
        for symbol in alphabet:
            target = (a.step(pair[0], symbol), b.step(pair[1], symbol))
            transitions[(pair, symbol)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)
    accepting = {
        (p, q)
        for (p, q) in states
        if accept(p in a.accepting, q in b.accepting)
    }
    return DFA(
        alphabet=alphabet,
        states=states,
        initial=start,
        accepting=accepting,
        transitions=transitions,
    )


def intersect(first: DFA, second: DFA) -> DFA:
    """Product DFA for the intersection."""
    return _product(first, second, lambda x, y: x and y)


def union(first: DFA, second: DFA) -> DFA:
    """Product DFA for the union."""
    return _product(first, second, lambda x, y: x or y)


def difference(first: DFA, second: DFA) -> DFA:
    """Product DFA for ``L(first) \\ L(second)``."""
    return _product(first, second, lambda x, y: x and not y)


def reverse_dfa(dfa: DFA) -> DFA:
    """DFA for the reversed language (reverse the NFA, determinize)."""
    return dfa.to_nfa().reversed().to_dfa()


def minimize(dfa: DFA) -> DFA:
    """The canonical minimal DFA (Moore's partition refinement).

    The input is trimmed to its reachable part and completed first; the
    result is total, renumbered 0..n-1 with 0 initial in BFS order, and
    canonical: two DFAs recognize the same language iff their minimized
    forms are identical.  Moore refinement is O(n^2 |Sigma|), ample for
    the automata this library produces, and straightforwardly correct.
    """
    total = complete(dfa.trim())
    states = sorted(total.states, key=repr)
    alphabet = list(total.alphabet)

    # block_of maps each state to its current equivalence-class id.
    block_of = {state: (1 if state in total.accepting else 0) for state in states}
    while True:
        # A state's signature is its own block plus the blocks reached
        # on each symbol; states are equivalent so far iff signatures match.
        signatures = {
            state: (
                block_of[state],
                tuple(block_of[total.step(state, symbol)] for symbol in alphabet),
            )
            for state in states
        }
        renumber: dict[tuple, int] = {}
        refined = {}
        for state in states:
            signature = signatures[state]
            if signature not in renumber:
                renumber[signature] = len(renumber)
            refined[state] = renumber[signature]
        if refined == block_of:
            break
        block_of = refined

    transitions = {
        (block_of[source], symbol): block_of[target]
        for (source, symbol), target in total.transitions.items()
    }
    minimal = DFA(
        alphabet=total.alphabet,
        states=set(block_of.values()),
        initial=block_of[total.initial],
        accepting={block_of[s] for s in total.accepting},
        transitions=transitions,
    )
    return minimal.trim().renumbered()


def state_count(dfa: DFA) -> int:
    """Number of states of the minimal automaton — the canonical
    complexity measure of a regular language."""
    return len(minimize(dfa).states)
