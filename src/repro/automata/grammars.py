"""Context-free grammars and CYK parsing.

The paper's Figure 1 headline is that a TVG-automaton "recognizes the
*context-free* language a^n b^n" without waiting.  To make that claim
checkable inside the library, this module supplies the context-free
comparator class: grammars, Chomsky-normal-form conversion, CYK
membership, and stock grammars for the languages the experiments use.

The classes sit between the regular languages of Theorem 2.2 and the
computable languages of Theorem 2.1 — the benchmarks place each sampled
TVG language against all three rungs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Iterable, Mapping, Sequence

from repro.automata.alphabet import Alphabet
from repro.errors import AutomatonError

#: A production right-hand side: a tuple of terminals and nonterminals.
Rhs = tuple[str, ...]


@dataclass(frozen=True)
class Production:
    """One rule ``head -> body`` (body may be empty for epsilon)."""

    head: str
    body: Rhs

    def __str__(self) -> str:
        rhs = " ".join(self.body) if self.body else "ε"
        return f"{self.head} -> {rhs}"


class ContextFreeGrammar:
    """A CFG over single-character terminals.

    Nonterminals are multi-character (or uppercase) strings; anything
    appearing as a production head is a nonterminal, everything else in
    bodies is a terminal and must be a single character.
    """

    def __init__(
        self,
        start: str,
        productions: Iterable[tuple[str, Sequence[str]]],
        name: str = "",
    ) -> None:
        self.start = start
        self.productions = [Production(h, tuple(b)) for h, b in productions]
        self.name = name
        self.nonterminals = {p.head for p in self.productions}
        if start not in self.nonterminals:
            raise AutomatonError(f"start symbol {start!r} has no productions")
        terminals: set[str] = set()
        for production in self.productions:
            for symbol in production.body:
                if symbol in self.nonterminals:
                    continue
                if len(symbol) != 1:
                    raise AutomatonError(
                        f"terminal {symbol!r} in {production} is not a "
                        "single character"
                    )
                terminals.add(symbol)
        if not terminals:
            raise AutomatonError("grammar has no terminals")
        self.alphabet = Alphabet(sorted(terminals))

    # -- CNF conversion -------------------------------------------------------------

    def to_cnf(self) -> "CnfGrammar":
        """Chomsky normal form (with a possible S -> epsilon at the root).

        Standard pipeline: new start symbol, TERM (terminals out of long
        bodies), BIN (binarize), DEL (epsilon elimination), UNIT (unit
        elimination).
        """
        fresh = (f"_N{i}" for i in count())
        start = next(fresh)
        rules: list[Production] = [Production(start, (self.start,))]
        rules += list(self.productions)

        # TERM: replace terminals inside bodies of length >= 2.
        terminal_proxy: dict[str, str] = {}
        termed: list[Production] = []
        for production in rules:
            if len(production.body) >= 2:
                new_body = []
                for symbol in production.body:
                    if symbol in self.nonterminals or symbol == self.start or symbol.startswith("_N"):
                        new_body.append(symbol)
                    elif len(symbol) == 1 and symbol not in self.nonterminals:
                        proxy = terminal_proxy.setdefault(symbol, f"_T{symbol}")
                        new_body.append(proxy)
                    else:
                        new_body.append(symbol)
                termed.append(Production(production.head, tuple(new_body)))
            else:
                termed.append(production)
        for symbol, proxy in terminal_proxy.items():
            termed.append(Production(proxy, (symbol,)))

        nonterminals = {p.head for p in termed}

        # BIN: binarize long bodies.
        binned: list[Production] = []
        for production in termed:
            body = production.body
            head = production.head
            while len(body) > 2:
                helper = next(fresh)
                binned.append(Production(head, (body[0], helper)))
                head, body = helper, body[1:]
            binned.append(Production(head, body))
        nonterminals = {p.head for p in binned}

        # DEL: compute nullable set, expand bodies.
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for production in binned:
                if production.head in nullable:
                    continue
                if all(s in nullable for s in production.body):
                    nullable.add(production.head)
                    changed = True
        expanded: set[Production] = set()
        for production in binned:
            body = production.body
            options: list[Rhs] = [()]
            for symbol in body:
                grown: list[Rhs] = []
                for prefix in options:
                    grown.append(prefix + (symbol,))
                    if symbol in nullable:
                        grown.append(prefix)
                options = grown
            for choice in options:
                if choice or production.head == start:
                    expanded.add(Production(production.head, choice))

        # UNIT: eliminate unit productions via closure.
        unit_reach: dict[str, set[str]] = {n: {n} for n in nonterminals}
        changed = True
        while changed:
            changed = False
            for production in expanded:
                if len(production.body) == 1 and production.body[0] in nonterminals:
                    target = production.body[0]
                    before = len(unit_reach[production.head])
                    unit_reach[production.head] |= unit_reach.get(target, {target})
                    if len(unit_reach[production.head]) != before:
                        changed = True
        final: set[Production] = set()
        accepts_epsilon = False
        for head, reachable in unit_reach.items():
            for production in expanded:
                if production.head not in reachable:
                    continue
                body = production.body
                if len(body) == 1 and body[0] in nonterminals:
                    continue  # unit: folded away
                if not body:
                    if head == start:
                        accepts_epsilon = True
                    continue
                final.add(Production(head, body))

        binary: dict[str, list[tuple[str, str]]] = {}
        lexical: dict[str, list[str]] = {}
        for production in final:
            if len(production.body) == 2:
                binary.setdefault(production.head, []).append(
                    (production.body[0], production.body[1])
                )
            elif len(production.body) == 1:
                lexical.setdefault(production.head, []).append(production.body[0])
        return CnfGrammar(
            start=start,
            binary=binary,
            lexical=lexical,
            accepts_epsilon=accepts_epsilon,
            alphabet=self.alphabet,
            name=self.name,
        )

    # -- public API -------------------------------------------------------------------

    def accepts(self, word: str) -> bool:
        """CYK membership (converts to CNF once, cached)."""
        if not hasattr(self, "_cnf"):
            self._cnf = self.to_cnf()
        return self._cnf.accepts(word)

    def language_upto(self, max_length: int) -> frozenset[str]:
        """The finite sample, by CYK over all words."""
        return frozenset(
            w for w in self.alphabet.words_upto(max_length) if self.accepts(w)
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"ContextFreeGrammar({label.strip()} start={self.start!r}, "
            f"|P|={len(self.productions)})"
        )


@dataclass
class CnfGrammar:
    """A grammar in Chomsky normal form, ready for CYK."""

    start: str
    binary: Mapping[str, list[tuple[str, str]]]
    lexical: Mapping[str, list[str]]
    accepts_epsilon: bool
    alphabet: Alphabet
    name: str = ""

    def accepts(self, word: str) -> bool:
        """Cubic-time CYK membership."""
        if word == "":
            return self.accepts_epsilon
        self.alphabet.validate_word(word)
        n = len(word)
        # table[i][j] = nonterminals deriving word[i:i+j+1]
        table: list[list[set[str]]] = [[set() for _ in range(n)] for _ in range(n)]
        producers_of_terminal: dict[str, set[str]] = {}
        for head, symbols in self.lexical.items():
            for symbol in symbols:
                producers_of_terminal.setdefault(symbol, set()).add(head)
        for i, symbol in enumerate(word):
            table[i][0] = set(producers_of_terminal.get(symbol, set()))
        producers_of_pair: dict[tuple[str, str], set[str]] = {}
        for head, pairs in self.binary.items():
            for pair in pairs:
                producers_of_pair.setdefault(pair, set()).add(head)
        for span in range(1, n):
            for i in range(n - span):
                cell = table[i][span]
                for split in range(span):
                    for left in table[i][split]:
                        for right in table[i + split + 1][span - split - 1]:
                            cell |= producers_of_pair.get((left, right), set())
        return self.start in table[0][n - 1]


# -- stock grammars --------------------------------------------------------------------


def cfg_anbn(minimum_one: bool = True) -> ContextFreeGrammar:
    """``{a^n b^n}`` — with ``n >= 1`` (Figure 1's language) by default."""
    if minimum_one:
        productions = [("S", ["a", "S", "b"]), ("S", ["a", "b"])]
    else:
        productions = [("S", ["a", "S", "b"]), ("S", [])]
    return ContextFreeGrammar("S", productions, name="anbn")


def cfg_palindromes() -> ContextFreeGrammar:
    """Palindromes over {a, b} (including the empty word)."""
    return ContextFreeGrammar(
        "S",
        [
            ("S", ["a", "S", "a"]),
            ("S", ["b", "S", "b"]),
            ("S", ["a"]),
            ("S", ["b"]),
            ("S", []),
        ],
        name="palindromes",
    )


def cfg_balanced() -> ContextFreeGrammar:
    """Dyck-like balance, a opening and b closing."""
    return ContextFreeGrammar(
        "S",
        [("S", ["a", "S", "b", "S"]), ("S", [])],
        name="balanced",
    )
