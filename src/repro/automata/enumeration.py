"""Language enumeration and counting.

Finite language samples — "all accepted words up to length n" — are the
common currency of this reproduction: the same sample is computed from a
TVG-automaton under some waiting semantics and from a reference automaton
or decider, and the two are compared exactly.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA


def enumerate_language(
    automaton: DFA | NFA, max_length: int
) -> Iterator[str]:
    """Accepted words of length <= max_length, shortest first.

    Walks the word tree but prunes dead branches (states from which the
    language is empty), so sparse languages enumerate cheaply.
    """
    dfa = automaton.to_dfa() if isinstance(automaton, NFA) else automaton
    live = _live_states(dfa)
    if dfa.initial not in live:
        return

    def expand(state, word: str) -> Iterator[str]:
        if state in dfa.accepting:
            yield word
        if len(word) >= max_length:
            return
        for symbol in dfa.alphabet:
            target = dfa.step(state, symbol)
            if target is not None and target in live:
                yield from expand(target, word + symbol)

    # Sort by (length, word) to present shortest-first deterministically.
    yield from sorted(expand(dfa.initial, ""), key=lambda w: (len(w), w))


def language_upto(automaton: DFA | NFA, max_length: int) -> frozenset[str]:
    """The finite sample ``L ∩ Sigma^{<=max_length}`` as a set."""
    return frozenset(enumerate_language(automaton, max_length))


def language_of_predicate(
    predicate: Callable[[str], bool],
    alphabet: Alphabet | str,
    max_length: int,
) -> frozenset[str]:
    """The finite sample of an arbitrary decision procedure.

    This is how deciders (Turing machines, Python callables) enter the
    comparison pipeline on equal footing with automata.
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    return frozenset(w for w in sigma.words_upto(max_length) if predicate(w))


def count_words_by_length(automaton: DFA | NFA, max_length: int) -> list[int]:
    """``result[n]`` = number of accepted words of length exactly ``n``.

    Dynamic programming over state occupancy vectors — no enumeration —
    so counts are cheap even when the language is dense.
    """
    dfa = automaton.to_dfa() if isinstance(automaton, NFA) else automaton
    occupancy: dict = {dfa.initial: 1}
    counts = [sum(c for s, c in occupancy.items() if s in dfa.accepting)]
    for _ in range(max_length):
        advanced: dict = {}
        for state, ways in occupancy.items():
            for symbol in dfa.alphabet:
                target = dfa.step(state, symbol)
                if target is not None:
                    advanced[target] = advanced.get(target, 0) + ways
        occupancy = advanced
        counts.append(sum(c for s, c in occupancy.items() if s in dfa.accepting))
    return counts


def _live_states(dfa: DFA) -> frozenset:
    """States from which some accepting state is reachable."""
    inverse: dict = {}
    for (source, _symbol), target in dfa.transitions.items():
        inverse.setdefault(target, set()).add(source)
    live = set(dfa.accepting)
    frontier = list(live)
    while frontier:
        state = frontier.pop()
        for source in inverse.get(state, ()):
            if source not in live:
                live.add(source)
                frontier.append(source)
    return frozenset(live)
