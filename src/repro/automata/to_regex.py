"""Automaton -> regular expression (state elimination).

Closes the Theorem 2.2 loop in human-readable form: a periodic TVG's
wait language can be *extracted* (``language_compute``), *minimized*
(``operations``), and now *written down* as a regex the parser round
trips.  The output uses the library's own regex syntax, so
``regex_to_nfa(automaton_to_regex(dfa))`` is always equivalent to the
input — the property the tests enforce.

The construction is classic Brzozowski–McCluskey state elimination over
generalized NFAs whose arrows carry regex ASTs.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.regex import (
    Concat,
    Epsilon,
    Literal,
    RegexNode,
    Star,
    Union,
)

#: Internal sentinel for "no arrow" (the empty language), kept out of the
#: public regex AST: unions with it collapse, concatenations die.
_EMPTY = None


def _union(left: RegexNode | None, right: RegexNode | None) -> RegexNode | None:
    if left is _EMPTY:
        return right
    if right is _EMPTY:
        return left
    if left == right:
        return left
    return Union(left, right)


def _concat(left: RegexNode | None, right: RegexNode | None) -> RegexNode | None:
    if left is _EMPTY or right is _EMPTY:
        return _EMPTY
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    return Concat(left, right)


def _star(inner: RegexNode | None) -> RegexNode:
    if inner is _EMPTY or isinstance(inner, Epsilon):
        return Epsilon()
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def nfa_to_regex(nfa: NFA) -> RegexNode:
    """A regex AST for the NFA's language (possibly matching nothing).

    An automaton with empty language yields a regex matching nothing is
    impossible in the plain syntax; such inputs raise ``ValueError`` —
    check emptiness first (``nfa.to_dfa().is_empty()``).
    """
    # Generalized NFA: fresh initial/final, arrows labeled by ASTs.
    initial, final = ("__init__",), ("__final__",)
    states = [initial] + sorted(
        ((s,) for s in nfa.states), key=repr
    ) + [final]
    arrows: dict[tuple, RegexNode | None] = {}

    def get(a, b):
        return arrows.get((a, b), _EMPTY)

    def put(a, b, node):
        arrows[(a, b)] = node

    for state in nfa.initial:
        put(initial, (state,), _union(get(initial, (state,)), Epsilon()))
    for state in nfa.accepting:
        put((state,), final, _union(get((state,), final), Epsilon()))
    for (state, symbol), targets in nfa.transitions.items():
        for target in targets:
            label: RegexNode = Epsilon() if symbol is None else Literal(symbol)
            put((state,), (target,), _union(get((state,), (target,)), label))

    # Eliminate the original states one at a time.
    for victim in states[1:-1]:
        loop = _star(get(victim, victim))
        survivors = [s for s in states if s != victim]
        for a in survivors:
            into = get(a, victim)
            if into is _EMPTY:
                continue
            for b in survivors:
                out = get(victim, b)
                if out is _EMPTY:
                    continue
                bypass = _concat(_concat(into, loop), out)
                put(a, b, _union(get(a, b), bypass))
        states = survivors
        arrows = {
            (a, b): node
            for (a, b), node in arrows.items()
            if victim not in (a, b)
        }

    result = get(initial, final)
    if result is _EMPTY:
        raise ValueError(
            "the automaton's language is empty; plain regex syntax cannot "
            "denote the empty language"
        )
    return result


def dfa_to_regex(dfa: DFA) -> RegexNode:
    """A regex AST for the DFA's language (see :func:`nfa_to_regex`)."""
    return nfa_to_regex(dfa.to_nfa())


def automaton_to_regex_string(automaton: DFA | NFA) -> str:
    """The regex as concrete syntax the library's parser accepts."""
    node = (
        dfa_to_regex(automaton)
        if isinstance(automaton, DFA)
        else nfa_to_regex(automaton)
    )
    return str(node)
