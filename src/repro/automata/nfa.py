"""Nondeterministic finite automata with epsilon transitions.

The transition map sends ``(state, symbol)`` to a set of states, with
``symbol = None`` meaning an epsilon move.  Epsilon transitions are what
make the wait-language extraction natural: *waiting one time unit* is an
epsilon move of the time-expanded automaton.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.automata.alphabet import Alphabet
from repro.errors import AutomatonError

State = Hashable


class NFA:
    """A nondeterministic finite automaton with optional epsilon moves."""

    def __init__(
        self,
        alphabet: Alphabet | str,
        states: Iterable[State],
        initial: Iterable[State],
        accepting: Iterable[State],
        transitions: Mapping[tuple[State, str | None], Iterable[State]],
    ) -> None:
        self.alphabet = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        self.states = frozenset(states)
        self.initial = frozenset(initial)
        self.accepting = frozenset(accepting)
        self.transitions: dict[tuple[State, str | None], frozenset[State]] = {
            key: frozenset(targets) for key, targets in transitions.items()
        }
        self._validate()

    def _validate(self) -> None:
        if not self.initial:
            raise AutomatonError("an NFA needs at least one initial state")
        for name, group in (("initial", self.initial), ("accepting", self.accepting)):
            stray = group - self.states
            if stray:
                raise AutomatonError(f"{name} states {stray!r} are not states")
        for (state, symbol), targets in self.transitions.items():
            if state not in self.states:
                raise AutomatonError(f"transition from unknown state {state!r}")
            if symbol is not None and symbol not in self.alphabet:
                raise AutomatonError(
                    f"transition on symbol {symbol!r} outside the alphabet"
                )
            stray = targets - self.states
            if stray:
                raise AutomatonError(f"transition to unknown states {stray!r}")

    # -- running ------------------------------------------------------------------

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """All states reachable from ``states`` by epsilon moves alone."""
        closure = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for target in self.transitions.get((state, None), ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: str) -> frozenset[State]:
        """The epsilon-closed successor set on one input symbol."""
        moved: set[State] = set()
        for state in self.epsilon_closure(states):
            moved.update(self.transitions.get((state, symbol), ()))
        return self.epsilon_closure(moved)

    def run(self, word: str) -> frozenset[State]:
        """The set of states reachable on ``word`` from the initial set."""
        self.alphabet.validate_word(word)
        current = self.epsilon_closure(self.initial)
        for symbol in word:
            if not current:
                break
            current = self.step(current, symbol)
        return current

    def accepts(self, word: str) -> bool:
        """Whether some run on ``word`` ends in an accepting state."""
        return bool(self.run(word) & self.accepting)

    # -- conversions -----------------------------------------------------------------

    def to_dfa(self) -> "DFA":
        """The subset-construction DFA (reachable part only).

        States of the result are frozensets of NFA states; the empty set
        (dead state) is left implicit, so the result may be partial.
        """
        from repro.automata.dfa import DFA

        start = self.epsilon_closure(self.initial)
        states: set[frozenset[State]] = {start}
        transitions: dict[tuple[frozenset[State], str], frozenset[State]] = {}
        frontier = [start]
        while frontier:
            subset = frontier.pop()
            for symbol in self.alphabet:
                target = self.step(subset, symbol)
                if not target:
                    continue
                transitions[(subset, symbol)] = target
                if target not in states:
                    states.add(target)
                    frontier.append(target)
        accepting = {subset for subset in states if subset & self.accepting}
        return DFA(
            alphabet=self.alphabet,
            states=states,
            initial=start,
            accepting=accepting,
            transitions=transitions,
        )

    def reversed(self) -> "NFA":
        """The NFA for the reversed language."""
        delta: dict[tuple[State, str | None], set[State]] = {}
        for (state, symbol), targets in self.transitions.items():
            for target in targets:
                delta.setdefault((target, symbol), set()).add(state)
        return NFA(
            alphabet=self.alphabet,
            states=self.states,
            initial=self.accepting if self.accepting else {next(iter(self.states))},
            accepting=self.initial,
            transitions=delta,
        )

    def relabel_states(self) -> "NFA":
        """An isomorphic NFA with integer states (stable order)."""
        order = {state: i for i, state in enumerate(sorted(self.states, key=repr))}
        return NFA(
            alphabet=self.alphabet,
            states=range(len(order)),
            initial={order[s] for s in self.initial},
            accepting={order[s] for s in self.accepting},
            transitions={
                (order[s], a): {order[t] for t in targets}
                for (s, a), targets in self.transitions.items()
            },
        )

    @property
    def size(self) -> int:
        return len(self.states)

    def __repr__(self) -> str:
        epsilons = sum(1 for (_s, a) in self.transitions if a is None)
        return (
            f"NFA(|Q|={len(self.states)}, Sigma={''.join(self.alphabet)!r}, "
            f"|I|={len(self.initial)}, |F|={len(self.accepting)}, "
            f"eps-moves={epsilons})"
        )


# Imported late to avoid a cycle at module load.
from repro.automata.dfa import DFA  # noqa: E402  (re-export for type users)
