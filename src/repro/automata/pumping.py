"""Pumping-lemma machinery for regular languages.

Another finite witness of (non-)regularity to stand next to the
Myhill–Nerode bounds: if ``L`` is regular with a DFA of ``n`` states,
every word of length >= ``n`` splits as ``x y z`` with ``|xy| <= n``,
``y`` nonempty, and ``x y^i z`` in ``L`` for all ``i``.  Given only a
finite sample, the checker reports decompositions that *fail inside the
sampled range* — for a^n b^n every split of the a-block fails at
``i = 0`` or ``i = 2``, so the evidence is decisive at small depths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class PumpingViolation:
    """A decomposition and repetition count that leaves the language."""

    word: str
    x: str
    y: str
    z: str
    i: int

    @property
    def pumped(self) -> str:
        return self.x + self.y * self.i + self.z

    def __str__(self) -> str:
        return (
            f"{self.word!r} = {self.x!r} {self.y!r} {self.z!r}: "
            f"x y^{self.i} z = {self.pumped!r} leaves the language"
        )


def decompositions(word: str, pumping_length: int) -> Iterator[tuple[str, str, str]]:
    """All ``x y z`` splits with ``|xy| <= pumping_length`` and ``y != ''``."""
    limit = min(pumping_length, len(word))
    for start in range(limit):
        for end in range(start + 1, limit + 1):
            yield word[:start], word[start:end], word[end:]


def check_word_pumpable(
    member: Callable[[str], bool],
    word: str,
    pumping_length: int,
    max_i: int = 3,
) -> PumpingViolation | None:
    """Is *some* decomposition of ``word`` pumpable within ``i <= max_i``?

    Returns ``None`` if a decomposition survives all tested repetition
    counts (the word gives no evidence against the pumping length), or
    the violation found for the *best surviving* decomposition otherwise
    — i.e. a non-None result means **every** admissible split fails.
    """
    best_violation: PumpingViolation | None = None
    for x, y, z in decompositions(word, pumping_length):
        violation = None
        for i in range(max_i + 1):
            if not member(x + y * i + z):
                violation = PumpingViolation(word, x, y, z, i)
                break
        if violation is None:
            return None  # this split pumps fine; no counterexample here
        best_violation = violation
    return best_violation


def find_pumping_counterexample(
    member: Callable[[str], bool],
    sample_words: Iterator[str] | list[str],
    pumping_length: int,
    max_i: int = 3,
) -> PumpingViolation | None:
    """A word of the language with **no** pumpable decomposition.

    Such a word refutes "L is regular with ≤ pumping_length states".
    Scanning increasing pumping lengths turns this into a lower-bound
    ladder (see :func:`regularity_refutation_ladder`).
    """
    for word in sample_words:
        if len(word) < pumping_length or not member(word):
            continue
        violation = check_word_pumpable(member, word, pumping_length, max_i)
        if violation is not None:
            return violation
    return None


def regularity_refutation_ladder(
    member: Callable[[str], bool],
    alphabet: str,
    max_pumping_length: int,
    word_depth: int | None = None,
    max_i: int = 3,
) -> list[tuple[int, PumpingViolation | None]]:
    """For each pumping length 1..max, a counterexample (or None).

    A row ``(p, violation)`` with a violation refutes every DFA with
    ``<= p`` states; an unbroken ladder up to ``p`` is strong finite
    evidence of non-regularity at scale ``p``.  For genuinely regular
    languages the ladder breaks at the true pumping length.
    """
    from repro.automata.alphabet import Alphabet

    sigma = Alphabet(alphabet)
    depth = word_depth if word_depth is not None else 2 * max_pumping_length + 2
    words = [w for w in sigma.words_upto(depth) if member(w)]
    ladder = []
    for pumping_length in range(1, max_pumping_length + 1):
        ladder.append(
            (
                pumping_length,
                find_pumping_counterexample(member, words, pumping_length, max_i),
            )
        )
    return ladder


def refuted_state_bound(
    member: Callable[[str], bool],
    alphabet: str,
    max_pumping_length: int,
    word_depth: int | None = None,
) -> int:
    """The largest ``p`` such that every pumping length <= p is refuted.

    0 when even pumping length 1 survives.  For a^n b^n this climbs with
    the sampling depth; for a regular language it stalls below the DFA
    size forever.
    """
    bound = 0
    for pumping_length, violation in regularity_refutation_ladder(
        member, alphabet, max_pumping_length, word_depth
    ):
        if violation is None:
            break
        bound = pumping_length
    return bound
