"""Well-quasi-orders on words and closure constructions.

Theorem 2.2's hard direction rests on a quasi-order on words "based upon
the possibility of inclusion for corresponding journeys" being a *well*
quasi-order, combined with Harju & Ilie's theorem that a language closed
upward for a well quasi-order refining the subword order is regular.

This module provides the executable pieces of that toolchain:

* Higman's scattered-subword embedding (the prototypical wqo on words),
  antichain search as an empirical well-ness check;
* upward and downward closures of a regular language under subword
  embedding — both regular by Higman's lemma, via standard NFA surgery;
* the *configuration preorder* of a TVG-automaton: ``w <= w'`` when every
  configuration reachable by reading ``w'`` is also reachable by reading
  ``w``.  Under wait semantics on a periodic graph this preorder has
  finite index (configurations live in a finite residue space), which is
  precisely why ``L_wait`` collapses to regular there — the benchmark
  measures that index.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.automata.nfa import NFA
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.semantics import WAIT, WaitingSemantics


def is_subword(shorter: str, longer: str) -> bool:
    """Higman embedding: ``shorter`` is a scattered subword of ``longer``.

    >>> is_subword("ace", "abcde")
    True
    >>> is_subword("ba", "ab")
    False
    """
    iterator = iter(longer)
    return all(symbol in iterator for symbol in shorter)


def is_antichain(words: Iterable[str]) -> bool:
    """No word in the set embeds into another (subword order)."""
    words = list(words)
    for first, second in combinations(words, 2):
        if is_subword(first, second) or is_subword(second, first):
            return False
    return True


def maximal_antichain(words: Iterable[str]) -> list[str]:
    """A maximal antichain within the given finite set (greedy).

    Higman's lemma promises every antichain over a finite alphabet is
    finite; tests use this to probe that promise on random samples.
    """
    chain: list[str] = []
    for word in sorted(set(words), key=lambda w: (len(w), w)):
        if all(
            not is_subword(existing, word) and not is_subword(word, existing)
            for existing in chain
        ):
            chain.append(word)
    return chain


def minimal_elements(words: Iterable[str]) -> list[str]:
    """The subword-minimal members of a finite set.

    The upward closure of a set equals the upward closure of its minimal
    elements, so these are the canonical generators.
    """
    pool = sorted(set(words), key=lambda w: (len(w), w))
    kept: list[str] = []
    for word in pool:
        if not any(is_subword(other, word) for other in kept):
            kept.append(word)
    return kept


def upward_closure(nfa: NFA) -> NFA:
    """NFA for ``{w : some v in L(nfa) embeds into w}``.

    Standard surgery: allow any symbol to be skipped at any state by
    adding a full self-loop alphabet at every state.  Regular by Higman's
    lemma; here it is constructive.
    """
    transitions: dict[tuple, set] = {
        key: set(targets) for key, targets in nfa.transitions.items()
    }
    for state in nfa.states:
        for symbol in nfa.alphabet:
            transitions.setdefault((state, symbol), set()).add(state)
    return NFA(
        alphabet=nfa.alphabet,
        states=nfa.states,
        initial=nfa.initial,
        accepting=nfa.accepting,
        transitions=transitions,
    )


def downward_closure(nfa: NFA) -> NFA:
    """NFA for ``{w : w embeds into some v in L(nfa)}``.

    Dual surgery: every labeled transition may also be taken silently
    (the symbol is dropped), i.e. it gains an epsilon twin.
    """
    transitions: dict[tuple, set] = {
        key: set(targets) for key, targets in nfa.transitions.items()
    }
    for (state, symbol), targets in list(nfa.transitions.items()):
        if symbol is not None:
            transitions.setdefault((state, None), set()).update(targets)
    return NFA(
        alphabet=nfa.alphabet,
        states=nfa.states,
        initial=nfa.initial,
        accepting=nfa.accepting,
        transitions=transitions,
    )


def upward_closure_of_words(words: Sequence[str], alphabet: str) -> NFA:
    """NFA for the subword upward closure of a finite word set."""
    from repro.automata.alphabet import Alphabet

    sigma = Alphabet(alphabet)
    states: set = set()
    transitions: dict[tuple, set] = {}
    initial = {("w", -1, -1)}
    accepting: set = set()
    states.add(("w", -1, -1))
    for index, word in enumerate(minimal_elements(words)):
        previous = ("w", -1, -1)
        for position, symbol in enumerate(word):
            state = ("w", index, position)
            states.add(state)
            transitions.setdefault((previous, symbol), set()).add(state)
            previous = state
        accepting.add(previous)
    nfa = NFA(
        alphabet=sigma,
        states=states,
        initial=initial,
        accepting=accepting or initial,
        transitions=transitions,
    )
    return upward_closure(nfa)


# -- the configuration preorder of a TVG-automaton -----------------------------------------


def configuration_preorder_classes(
    automaton: TVGAutomaton,
    words: Iterable[str],
    semantics: WaitingSemantics = WAIT,
    horizon: int | None = None,
) -> dict[frozenset, list[str]]:
    """Group words by the configuration set they reach.

    Two words in the same class are Myhill–Nerode equivalent for the
    expressed language (any continuation treats them identically).  On a
    periodic graph configurations are first reduced to
    ``(node, time mod P)`` — the future of ``(v, t)`` is label-isomorphic
    to that of ``(v, t + P)``, so the residual languages agree — which
    makes the class count finite; the Theorem 2.2 benchmark reports it
    next to the minimal-DFA size of the extracted language.
    """
    period = automaton.graph.period
    classes: dict[frozenset, list[str]] = {}
    for word in words:
        configs = automaton.configurations(word, semantics, horizon)
        if period is not None:
            configs = {(node, time % period) for node, time in configs}
        classes.setdefault(frozenset(configs), []).append(word)
    return classes


def preorder_index_bound(
    automaton: TVGAutomaton,
    max_length: int,
    semantics: WaitingSemantics = WAIT,
    horizon: int | None = None,
) -> int:
    """Number of distinct configuration classes over all words up to a
    length — a concrete upper bound on the Myhill–Nerode index reached so
    far.  Stabilization as ``max_length`` grows is the empirical shadow of
    the wqo argument."""
    words = _all_words(automaton, max_length)
    return len(configuration_preorder_classes(automaton, words, semantics, horizon))


def _all_words(automaton: TVGAutomaton, max_length: int) -> list[str]:
    sigma = automaton.alphabet
    return list(sigma.words_upto(max_length))
