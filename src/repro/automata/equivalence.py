"""Language equivalence and inclusion with counterexamples.

Equivalence uses the Hopcroft–Karp union-find bisimulation check, which
visits each product state once and, on failure, returns a concrete word
the two automata disagree on — the benchmarks report these words rather
than a bare boolean.
"""

from __future__ import annotations

from typing import Hashable

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.automata.operations import _common_alphabet, complete, difference

State = Hashable


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[State, State] = {}

    def find(self, item: State) -> State:
        root = item
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(item, item) != item:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: State, b: State) -> None:
        self.parent[self.find(a)] = self.find(b)


def find_distinguishing_word(first: DFA, second: DFA) -> str | None:
    """A shortest-ish word accepted by exactly one automaton, or ``None``.

    Hopcroft–Karp: walk the product automaton merging states assumed
    equivalent; the first merged pair with different acceptance yields the
    word spelled by the path to it.
    """
    alphabet = _common_alphabet(first, second)
    a, b = complete(first), complete(second)
    uf = _UnionFind()
    left = ("L", a.initial)
    right = ("R", b.initial)
    uf.union(left, right)
    queue: list[tuple[State, State, str]] = [(a.initial, b.initial, "")]
    while queue:
        p, q, word = queue.pop(0)
        if (p in a.accepting) != (q in b.accepting):
            return word
        for symbol in alphabet:
            pn, qn = a.step(p, symbol), b.step(q, symbol)
            lp, rq = ("L", pn), ("R", qn)
            if uf.find(lp) != uf.find(rq):
                uf.union(lp, rq)
                queue.append((pn, qn, word + symbol))
    return None


def equivalent(first: DFA | NFA, second: DFA | NFA) -> bool:
    """Whether the two automata accept the same language.

    NFAs are determinized first; alphabets must match.
    """
    a = first.to_dfa() if isinstance(first, NFA) else first
    b = second.to_dfa() if isinstance(second, NFA) else second
    return find_distinguishing_word(a, b) is None


def is_subset(first: DFA | NFA, second: DFA | NFA) -> bool:
    """Whether ``L(first)`` is contained in ``L(second)``."""
    a = first.to_dfa() if isinstance(first, NFA) else first
    b = second.to_dfa() if isinstance(second, NFA) else second
    return difference(a, b).is_empty()


def inclusion_counterexample(first: DFA | NFA, second: DFA | NFA) -> str | None:
    """A word of ``L(first) \\ L(second)``, or ``None`` if included.

    Breadth-first over the difference automaton, so the returned witness
    has minimum length.
    """
    a = first.to_dfa() if isinstance(first, NFA) else first
    b = second.to_dfa() if isinstance(second, NFA) else second
    gap = difference(a, b)
    queue: list[tuple[State, str]] = [(gap.initial, "")]
    seen = {gap.initial}
    while queue:
        state, word = queue.pop(0)
        if state in gap.accepting:
            return word
        for symbol in gap.alphabet:
            target = gap.step(state, symbol)
            if target is not None and target not in seen:
                seen.add(target)
                queue.append((target, word + symbol))
    return None
