"""TVG-automata: time-varying graphs as language acceptors.

Following Section 2 of the paper, a TVG ``G`` whose edges are labeled
over ``Sigma`` is viewed as an automaton
``A(G) = (Sigma, S, I, E, F)`` with ``S = V`` and transitions
``(s, t, a, s', t')`` available iff an ``a``-labeled edge ``(s, s')`` is
present at ``t`` with latency ``t' - t``.  A word is accepted when some
feasible journey from an initial to an accepting node spells it; which
journeys are feasible depends on the waiting semantics, giving the three
languages ``L_nowait(G)``, ``L_wait(G)`` and ``L_wait[d](G)``.

Configurations are ``(node, time)`` pairs; the acceptor runs set-of-
configurations style, so nondeterministic graphs work unmodified.
Unlabeled edges are treated as epsilon transitions (they consume no
input but take time), a conservative extension the paper's examples
don't use but the regular-embedding construction benefits from.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.automata.alphabet import Alphabet
from repro.core.edges import Edge
from repro.core.intervals import Interval
from repro.core.journeys import Hop, Journey
from repro.core.semantics import NO_WAIT, WaitingSemantics
from repro.core.tvg import TimeVaryingGraph
from repro.errors import AutomatonError, TimeDomainError

Config = tuple[Hashable, int]


class TVGAutomaton:
    """A time-varying graph read as a finite-word acceptor.

    Attributes:
        graph: The underlying TVG (labels are the input alphabet).
        initial: Set of initial nodes ``I``.
        accepting: Set of accepting nodes ``F``.
        start_time: The date reading starts (the paper's Figure 1 starts
            at ``t = 1``).
    """

    def __init__(
        self,
        graph: TimeVaryingGraph,
        initial: Iterable[Hashable] | Hashable,
        accepting: Iterable[Hashable] | Hashable,
        start_time: int = 0,
    ) -> None:
        self.graph = graph
        self.initial = _as_node_set(graph, initial, "initial")
        self.accepting = _as_node_set(graph, accepting, "accepting")
        self.start_time = start_time
        if not graph.alphabet and not any(
            e.label is None for e in graph.edges
        ) and graph.edge_count:
            raise AutomatonError("automaton graph has no usable edges")

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet ``Sigma`` = labels in use."""
        labels = sorted(self.graph.alphabet)
        if not labels:
            raise AutomatonError("automaton graph has no labeled edges")
        return Alphabet(labels)

    # -- departures under a semantics ----------------------------------------------

    def _departures(
        self,
        edge: Edge,
        ready: int,
        semantics: WaitingSemantics,
        horizon: int | None,
    ) -> Iterator[int]:
        if horizon is not None and ready >= horizon:
            return
        if semantics.is_no_wait:
            if edge.present_at(ready):
                yield ready
            return
        if horizon is None:
            raise TimeDomainError(
                "waiting semantics need an explicit horizon on this graph "
                "(pass horizon=..., or bound the graph lifetime)"
            )
        latest = semantics.latest_departure(ready, horizon)
        yield from edge.presence.support(Interval(ready, latest)).times()

    def _resolve_horizon(self, horizon: int | None) -> int | None:
        if horizon is not None:
            return horizon
        if self.graph.lifetime.bounded:
            return int(self.graph.lifetime.end)
        return None

    # -- configuration-set execution ---------------------------------------------------

    def _epsilon_closure(
        self,
        configs: set[Config],
        semantics: WaitingSemantics,
        horizon: int | None,
    ) -> set[Config]:
        """Close a configuration set under unlabeled-edge moves."""
        closure = set(configs)
        frontier = list(configs)
        while frontier:
            node, ready = frontier.pop()
            for edge in self.graph.out_edges(node):
                if edge.label is not None:
                    continue
                for departure in self._departures(edge, ready, semantics, horizon):
                    config = (edge.target, departure + edge.latency(departure))
                    if config not in closure:
                        closure.add(config)
                        frontier.append(config)
        return closure

    @staticmethod
    def _prune(configs: set[Config], semantics: WaitingSemantics) -> set[Config]:
        """Drop dominated configurations.

        Under unbounded waiting ``(v, t)`` can realize every continuation
        ``(v, t')`` with ``t' >= t`` can (wait the difference), so only the
        earliest date per node matters.  This collapses configuration
        sets to at most ``|V|`` entries — the optimization that makes
        deep sampling of clockwork graphs like Figure 1 tractable.  No
        such dominance holds for no-wait or bounded waiting.
        """
        if not semantics.unbounded:
            return configs
        earliest: dict[Hashable, int] = {}
        for node, time in configs:
            if node not in earliest or time < earliest[node]:
                earliest[node] = time
        return {(node, time) for node, time in earliest.items()}

    def initial_configurations(
        self,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
    ) -> set[Config]:
        """The epsilon-closed start configurations ``{(i, start_time)}``."""
        horizon = self._resolve_horizon(horizon)
        configs = {(node, self.start_time) for node in self.initial}
        return self._prune(
            self._epsilon_closure(configs, semantics, horizon), semantics
        )

    def step_configurations(
        self,
        configs: set[Config],
        symbol: str,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
    ) -> set[Config]:
        """All configurations reachable by reading one symbol."""
        horizon = self._resolve_horizon(horizon)
        advanced: set[Config] = set()
        for node, ready in self._prune(set(configs), semantics):
            for edge in self.graph.out_edges(node):
                if edge.label != symbol:
                    continue
                for departure in self._departures(edge, ready, semantics, horizon):
                    advanced.add((edge.target, departure + edge.latency(departure)))
        return self._prune(
            self._epsilon_closure(advanced, semantics, horizon), semantics
        )

    def configurations(
        self,
        word: str,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
    ) -> set[Config]:
        """All configurations reachable by reading ``word`` in full.

        Empty when the word cannot be read to completion.
        """
        horizon = self._resolve_horizon(horizon)
        configs = self.initial_configurations(semantics, horizon)
        for symbol in word:
            if not configs:
                break
            configs = self.step_configurations(configs, symbol, semantics, horizon)
        return configs

    # -- acceptance ---------------------------------------------------------------------

    def accepts(
        self,
        word: str,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
    ) -> bool:
        """Whether some feasible journey spelling ``word`` ends accepting.

        The empty word is accepted iff an accepting node is epsilon-
        reachable from an initial one (in particular if ``I ∩ F != ∅``).
        """
        configs = self.configurations(word, semantics, horizon)
        return any(node in self.accepting for node, _time in configs)

    def language(
        self,
        max_length: int,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        alphabet: Alphabet | str | None = None,
    ) -> frozenset[str]:
        """The finite sample ``L_f(G) ∩ Sigma^{<=max_length}``.

        Explores the word tree breadth-first, sharing configuration sets
        between sibling words and pruning words that cannot be read, so
        sparse languages cost far less than ``|Sigma|^max_length`` runs.
        """
        horizon = self._resolve_horizon(horizon)
        if alphabet is None:
            sigma = self.alphabet
        else:
            sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        accepted: set[str] = set()
        level: dict[str, frozenset[Config]] = {
            "": frozenset(self.initial_configurations(semantics, horizon))
        }
        for length in range(max_length + 1):
            for word, configs in level.items():
                if any(node in self.accepting for node, _t in configs):
                    accepted.add(word)
            if length == max_length:
                break
            next_level: dict[str, frozenset[Config]] = {}
            for word, configs in level.items():
                for symbol in sigma:
                    advanced = self.step_configurations(
                        set(configs), symbol, semantics, horizon
                    )
                    if advanced:
                        next_level[word + symbol] = frozenset(advanced)
            level = next_level
            if not level:
                break
        return frozenset(accepted)

    # -- witnesses ----------------------------------------------------------------------

    def accepting_journeys(
        self,
        word: str,
        semantics: WaitingSemantics = NO_WAIT,
        horizon: int | None = None,
        max_count: int | None = None,
    ) -> Iterator[Journey]:
        """Feasible journeys that spell ``word`` and end accepting.

        Depth-first; useful as human-checkable witnesses.  Unlabeled
        (epsilon) edges may appear inside the journeys.  The empty word
        yields nothing (a journey needs at least one hop) even when it is
        *accepted* via ``I ∩ F``.
        """
        horizon = self._resolve_horizon(horizon)
        emitted = 0

        def expand(
            node: Hashable, ready: int, remaining: str, hops: list[Hop]
        ) -> Iterator[Journey]:
            nonlocal emitted
            if max_count is not None and emitted >= max_count:
                return
            if not remaining and hops and node in self.accepting:
                emitted += 1
                yield Journey(list(hops))
                # Continue: longer journeys (via epsilon edges) may also spell it.
            for edge in self.graph.out_edges(node):
                consumes: str | None
                if edge.label is None:
                    consumes = remaining
                elif remaining and edge.label == remaining[0]:
                    consumes = remaining[1:]
                else:
                    continue
                for departure in self._departures(edge, ready, semantics, horizon):
                    hops.append(Hop(edge, departure))
                    yield from expand(edge.target, hops[-1].arrival, consumes, hops)
                    hops.pop()

        for start in self.initial:
            yield from expand(start, self.start_time, word, [])

    # -- structural checks ------------------------------------------------------------------

    def is_deterministic_over(self, times: Iterable[int]) -> bool:
        """Whether, at every sampled date, each (node, symbol) pair has at
        most one present edge and there is a single initial node.

        Determinism of a TVG-automaton is in general undecidable (presence
        functions are arbitrary), so this is an explicit-window check — the
        paper's Figure 1 graph passes it on any window.
        """
        if len(self.initial) > 1:
            return False
        for time in times:
            for node in self.graph.nodes:
                seen: set[str | None] = set()
                for edge in self.graph.out_edges(node):
                    if not edge.present_at(time):
                        continue
                    if edge.label in seen:
                        return False
                    seen.add(edge.label)
        return True

    def __repr__(self) -> str:
        return (
            f"TVGAutomaton({self.graph!r}, I={sorted(map(repr, self.initial))}, "
            f"F={sorted(map(repr, self.accepting))}, t0={self.start_time})"
        )


def _as_node_set(
    graph: TimeVaryingGraph,
    nodes: Iterable[Hashable] | Hashable,
    role: str,
) -> frozenset[Hashable]:
    if isinstance(nodes, (str, bytes)) or not isinstance(nodes, Iterable):
        nodes = [nodes]
    result = frozenset(nodes)
    unknown = [n for n in result if not graph.has_node(n)]
    if unknown:
        raise AutomatonError(f"{role} nodes {unknown!r} are not in the graph")
    if not result:
        raise AutomatonError(f"at least one {role} node is required")
    return result
