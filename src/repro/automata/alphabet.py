"""Alphabets.

Symbols are single-character strings so that words can be plain Python
strings; an :class:`Alphabet` is a validated, ordered set of symbols.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import AutomatonError


class Alphabet:
    """An ordered set of single-character symbols.

    >>> sigma = Alphabet("ab")
    >>> sigma.validate_word("abba")
    'abba'
    >>> list(sigma)
    ['a', 'b']
    """

    __slots__ = ("_symbols", "_set")

    def __init__(self, symbols: Iterable[str]) -> None:
        ordered: list[str] = []
        seen: set[str] = set()
        for symbol in symbols:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise AutomatonError(
                    f"alphabet symbols must be single characters, got {symbol!r}"
                )
            if symbol not in seen:
                seen.add(symbol)
                ordered.append(symbol)
        if not ordered:
            raise AutomatonError("alphabet must be non-empty")
        self._symbols = tuple(ordered)
        self._set = frozenset(ordered)

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._set == other._set

    def __hash__(self) -> int:
        return hash(self._set)

    def __repr__(self) -> str:
        return f"Alphabet({''.join(self._symbols)!r})"

    @property
    def symbols(self) -> tuple[str, ...]:
        return self._symbols

    def validate_word(self, word: str) -> str:
        """Return ``word`` unchanged, or raise if it uses foreign symbols."""
        for position, symbol in enumerate(word):
            if symbol not in self._set:
                raise AutomatonError(
                    f"symbol {symbol!r} at position {position} of word {word!r} "
                    f"is not in alphabet {''.join(self._symbols)!r}"
                )
        return word

    def words_of_length(self, length: int) -> Iterator[str]:
        """All words of exactly the given length, in lexicographic order."""
        if length == 0:
            yield ""
            return
        for prefix in self.words_of_length(length - 1):
            for symbol in self._symbols:
                yield prefix + symbol

    def words_upto(self, max_length: int) -> Iterator[str]:
        """All words of length 0..max_length, shortest first."""
        for length in range(max_length + 1):
            yield from self.words_of_length(length)

    def merged(self, other: "Alphabet") -> "Alphabet":
        """The union alphabet, this one's symbols first."""
        return Alphabet(self._symbols + other._symbols)
