"""Regular expressions: parser, AST, and Thompson construction.

Supported syntax: literal symbols, grouping ``( )``, union ``|``,
Kleene star ``*``, plus ``+``, option ``?``; the empty concatenation
denotes epsilon (so ``(|a)`` matches the empty word or ``a``).  The
metacharacters themselves cannot be symbols.

A seeded random-regex generator is provided for the Theorem 2.2
benchmark, which embeds arbitrary regular languages into static TVGs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.automata.alphabet import Alphabet
from repro.automata.nfa import NFA
from repro.errors import RegexSyntaxError

_METACHARACTERS = set("()|*+?")


# -- AST -----------------------------------------------------------------------------


class RegexNode:
    """Base class of regex AST nodes."""

    def symbols(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Epsilon(RegexNode):
    def symbols(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Literal(RegexNode):
    symbol: str

    def symbols(self) -> frozenset[str]:
        return frozenset({self.symbol})

    def __str__(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class Concat(RegexNode):
    left: RegexNode
    right: RegexNode

    def symbols(self) -> frozenset[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"{_wrap(self.left, for_concat=True)}{_wrap(self.right, for_concat=True)}"


@dataclass(frozen=True)
class Union(RegexNode):
    left: RegexNode
    right: RegexNode

    def symbols(self) -> frozenset[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"{self.left}|{self.right}"


@dataclass(frozen=True)
class Star(RegexNode):
    inner: RegexNode

    def symbols(self) -> frozenset[str]:
        return self.inner.symbols()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


def _wrap(node: RegexNode, for_concat: bool = False) -> str:
    needs_parens = isinstance(node, Union) or (for_concat and isinstance(node, Union))
    if isinstance(node, (Concat,)) and not for_concat:
        needs_parens = True
    text = str(node)
    return f"({text})" if needs_parens else text


# -- parser ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.position = 0

    def fail(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(self.pattern, self.position, message)

    def peek(self) -> str | None:
        if self.position < len(self.pattern):
            return self.pattern[self.position]
        return None

    def take(self) -> str:
        symbol = self.pattern[self.position]
        self.position += 1
        return symbol

    def parse(self) -> RegexNode:
        node = self.union()
        if self.position != len(self.pattern):
            raise self.fail(f"unexpected {self.peek()!r}")
        return node

    def union(self) -> RegexNode:
        node = self.concat()
        while self.peek() == "|":
            self.take()
            node = Union(node, self.concat())
        return node

    def concat(self) -> RegexNode:
        parts: list[RegexNode] = []
        while True:
            symbol = self.peek()
            if symbol is None or symbol in "|)":
                break
            parts.append(self.repeat())
        if not parts:
            return Epsilon()
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def repeat(self) -> RegexNode:
        node = self.atom()
        while self.peek() in ("*", "+", "?"):
            operator = self.take()
            if operator == "*":
                node = Star(node)
            elif operator == "+":
                node = Concat(node, Star(node))
            else:
                node = Union(node, Epsilon())
        return node

    def atom(self) -> RegexNode:
        symbol = self.peek()
        if symbol == "(":
            self.take()
            node = self.union()
            if self.peek() != ")":
                raise self.fail("unbalanced parenthesis")
            self.take()
            return node
        if symbol is None or symbol in _METACHARACTERS:
            raise self.fail(f"expected a symbol, got {symbol!r}")
        return Literal(self.take())


def parse_regex(pattern: str) -> RegexNode:
    """Parse a pattern into a regex AST.

    >>> str(parse_regex("a(b|c)*"))
    'a(b|c)*'
    """
    return _Parser(pattern).parse()


# -- Thompson construction ---------------------------------------------------------------


class _Builder:
    """Allocates integer NFA states and accumulates transitions."""

    def __init__(self) -> None:
        self.counter = 0
        self.transitions: dict[tuple[int, str | None], set[int]] = {}

    def fresh(self) -> int:
        state = self.counter
        self.counter += 1
        return state

    def arrow(self, source: int, symbol: str | None, target: int) -> None:
        self.transitions.setdefault((source, symbol), set()).add(target)

    def build(self, node: RegexNode) -> tuple[int, int]:
        """Thompson fragment for ``node``: returns (entry, exit) states."""
        if isinstance(node, Epsilon):
            entry, exit_ = self.fresh(), self.fresh()
            self.arrow(entry, None, exit_)
            return entry, exit_
        if isinstance(node, Literal):
            entry, exit_ = self.fresh(), self.fresh()
            self.arrow(entry, node.symbol, exit_)
            return entry, exit_
        if isinstance(node, Concat):
            left_in, left_out = self.build(node.left)
            right_in, right_out = self.build(node.right)
            self.arrow(left_out, None, right_in)
            return left_in, right_out
        if isinstance(node, Union):
            entry, exit_ = self.fresh(), self.fresh()
            left_in, left_out = self.build(node.left)
            right_in, right_out = self.build(node.right)
            self.arrow(entry, None, left_in)
            self.arrow(entry, None, right_in)
            self.arrow(left_out, None, exit_)
            self.arrow(right_out, None, exit_)
            return entry, exit_
        if isinstance(node, Star):
            entry, exit_ = self.fresh(), self.fresh()
            inner_in, inner_out = self.build(node.inner)
            self.arrow(entry, None, inner_in)
            self.arrow(entry, None, exit_)
            self.arrow(inner_out, None, inner_in)
            self.arrow(inner_out, None, exit_)
            return entry, exit_
        raise TypeError(f"unknown regex node {node!r}")


def regex_to_nfa(
    pattern: str | RegexNode, alphabet: Alphabet | str | None = None
) -> NFA:
    """Thompson construction: an epsilon-NFA for the pattern.

    The alphabet defaults to the symbols occurring in the pattern; pass a
    larger one to compare languages over a common alphabet.
    """
    node = parse_regex(pattern) if isinstance(pattern, str) else pattern
    used = node.symbols()
    if alphabet is None:
        sigma = Alphabet(sorted(used) or ["a"])
    else:
        sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        missing = used - set(sigma)
        if missing:
            raise RegexSyntaxError(
                str(node), 0, f"pattern uses symbols {sorted(missing)} outside alphabet"
            )
    builder = _Builder()
    entry, exit_ = builder.build(node)
    return NFA(
        alphabet=sigma,
        states=range(builder.counter),
        initial={entry},
        accepting={exit_},
        transitions=builder.transitions,
    )


# -- random regexes -------------------------------------------------------------------------


def random_regex(
    alphabet: Alphabet | str,
    depth: int = 4,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> RegexNode:
    """A random regex AST over the alphabet, for benchmark workloads.

    Depth bounds the operator nesting; leaves are literals with a small
    chance of epsilon.  Deterministic given ``seed``/``rng``.
    """
    sigma = alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
    rng = rng if rng is not None else random.Random(seed if seed is not None else 0)

    def grow(remaining: int) -> RegexNode:
        if remaining <= 0 or rng.random() < 0.3:
            if rng.random() < 0.1:
                return Epsilon()
            return Literal(rng.choice(sigma.symbols))
        roll = rng.random()
        if roll < 0.4:
            return Concat(grow(remaining - 1), grow(remaining - 1))
        if roll < 0.75:
            return Union(grow(remaining - 1), grow(remaining - 1))
        return Star(grow(remaining - 1))

    return grow(depth)
